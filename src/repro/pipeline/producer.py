"""The producer half of the pipelined ingestion seam: a chunk-reading thread.

:class:`ChunkProducer` turns any chunk source — an on-disk trace path, a
:class:`~repro.streams.stream.Stream`, a numpy array, or a plain iterable of items —
into a bounded, thread-fed queue of contiguous int64 numpy chunks.  Parsing (file
reads, ``int()`` conversion, numpy materialization) happens on the producer thread;
the consumer iterates the producer and spends its time in ``insert_many``, which is
the overlap the pipelined executor exists to buy.  See :mod:`repro.pipeline` for the
backpressure/ordering/determinism contract.

Three properties the tests hold this class to:

* **backpressure** — the internal queue holds at most ``queue_depth`` chunks; when
  the consumer falls behind, the producer thread blocks in ``put`` instead of
  buffering the stream, so memory stays O(``queue_depth`` × ``chunk_size``);
* **exception propagation** — an exception raised by the source (a corrupt trace
  line, a failing generator) is captured on the producer thread and re-raised, as
  itself, out of the consumer's iteration;
* **clean shutdown** — :meth:`close` (also run by ``with`` and by normal iterator
  exhaustion) unblocks and joins the thread, so no run leaves a live thread behind
  whether the stream completed, errored, or was abandoned mid-way.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Iterator, Optional

import numpy as np

from repro.observability.metrics import resolve_registry
from repro.observability.tracing import resolve_tracer
from repro.primitives.batching import iter_chunks, rechunk_arrays
from repro.streams.io import iterate_stream_file_chunks

#: Default number of items per queued chunk (matches the CLI's replay chunking).
DEFAULT_CHUNK_ITEMS = 1 << 16

#: Default bound on the chunk queue: deep enough to ride out consumer jitter,
#: shallow enough that a stalled consumer caps the producer's read-ahead at a few
#: chunks.
DEFAULT_QUEUE_DEPTH = 4

_DONE = object()  # queue sentinel: the source is exhausted (or the producer died)


class ArrayBatchSource:
    """Mark a source as an iterable of *item batches* to re-chunk, not of items.

    :class:`ChunkProducer` normally treats a non-path source as a flat iterable of
    items.  A network ingest loop instead holds whole numpy batches (one per PUSH
    frame) whose sizes the client chose; wrapping that iterable in this class makes
    the producer re-chunk the batches to exact ``chunk_size`` boundaries via
    :func:`repro.primitives.batching.rechunk_arrays`, so the consumer sees the same
    chunk sequence an offline :func:`~repro.primitives.batching.iter_chunks` replay
    of the concatenated items would produce — the property the service layer's
    served-equals-offline guarantee rests on.

    Args:
        batches: an iterable (typically a generator draining a queue) of numpy
            arrays or other int sequences.
    """

    def __init__(self, batches) -> None:
        self.batches = batches


class ChunkProducer:
    """Read a chunk source on a background thread into a bounded queue.

    ``source`` may be a path (``str``/``os.PathLike`` — replayed out of core via
    :func:`repro.streams.io.iterate_stream_file_chunks`), an
    :class:`ArrayBatchSource` (an iterable of item *batches*, re-chunked to exact
    ``chunk_size`` boundaries — the network ingest case), or anything
    :func:`repro.primitives.batching.iter_chunks` accepts (a ``Stream``, a numpy
    array, any iterable of items).  Iterating the producer yields the chunks in
    source order; the concatenation of the yielded chunks is exactly the item
    sequence of the source.

    The producer is single-shot: one ``start()``/iteration per instance.  Iteration
    starts the thread implicitly; ``close()`` is idempotent and safe to call from
    ``finally`` blocks whether or not iteration ran to the end.
    """

    def __init__(
        self,
        source,
        chunk_size: int = DEFAULT_CHUNK_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        registry=None,
        tracer=None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self._registry = resolve_registry(registry)
        self._tracer = resolve_tracer(tracer)
        self._metric_queue_depth = self._registry.gauge(
            "repro_pipeline_queue_depth",
            "Chunks queued between the producer thread and the ingesting sink.",
        )
        if isinstance(source, (str, os.PathLike)):
            self._chunks = iterate_stream_file_chunks(os.fspath(source), chunk_size)
        elif isinstance(source, ArrayBatchSource):
            self._chunks = rechunk_arrays(source.batches, chunk_size)
        else:
            self._chunks = iter_chunks(source, chunk_size)
        self.chunk_size = chunk_size
        self.queue_depth = queue_depth
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._started = False
        self._closed = False
        self.max_queue_depth = 0  # deepest backlog the producer ever observed
        self.chunks_produced = 0
        self._thread = threading.Thread(
            target=self._produce, name="repro-chunk-producer", daemon=True
        )

    # -- producer side ------------------------------------------------------------------

    def _put(self, item) -> bool:
        """Enqueue with backpressure, giving up promptly once ``close`` is called."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self) -> None:
        tracer = self._tracer
        # One flag read per chunk decides whether to touch the clock at all: the
        # untraced, metrics-disabled path stays exactly the pre-observability loop.
        observe = self._registry.enabled or tracer.enabled
        iterator = iter(self._chunks)
        try:
            while True:
                started = time.perf_counter() if observe else 0.0
                try:
                    chunk = next(iterator)
                except StopIteration:
                    return
                index = self.chunks_produced
                self.chunks_produced += 1
                if tracer.enabled:
                    tracer.emit(
                        "produce",
                        seconds=time.perf_counter() - started,
                        chunk=index,
                        items=len(chunk),
                    )
                enqueue_started = time.perf_counter() if observe else 0.0
                if not self._put(chunk):
                    return  # closed mid-stream: drop the rest, no sentinel needed
                depth = self._queue.qsize()
                if depth > self.max_queue_depth:
                    self.max_queue_depth = depth
                if observe:
                    self._metric_queue_depth.set(depth)
                    if tracer.enabled:
                        tracer.emit(
                            "enqueue",
                            seconds=time.perf_counter() - enqueue_started,
                            chunk=index,
                            items=len(chunk),
                            queue_depth=depth,
                        )
        except BaseException as exc:  # noqa: BLE001 - re-raised on the consumer side
            self._error = exc
        finally:
            self._put(_DONE)

    # -- consumer side ------------------------------------------------------------------

    def start(self) -> "ChunkProducer":
        """Start the producer thread (idempotent; iteration calls this for you)."""
        if self._closed:
            raise RuntimeError("this ChunkProducer has been closed")
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def __iter__(self) -> Iterator[np.ndarray]:
        self.start()
        try:
            while True:
                chunk = self._queue.get()
                if chunk is _DONE:
                    if self._error is not None:
                        raise self._error
                    return
                yield chunk
        finally:
            self.close()

    def close(self) -> None:
        """Stop the producer, unblock it if it is waiting, and join the thread.

        Safe to call at any point (before starting, mid-stream, after exhaustion)
        and more than once.  A producer error that was never observed through
        iteration is swallowed here — closing is an abandonment path, not a query.
        """
        self._closed = True
        if not self._started:
            return
        self._stop.set()
        # Drain so a producer blocked in put() sees the stop event immediately
        # rather than after its current timeout slice.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)

    @property
    def is_alive(self) -> bool:
        """Whether the producer thread is currently running."""
        return self._thread.is_alive()

    def __enter__(self) -> "ChunkProducer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
