"""The consumer half of the pipelined ingestion seam: queue-fed sketch updates.

:class:`PipelinedExecutor` drains a :class:`~repro.pipeline.producer.ChunkProducer`
into either a single sketch's ``insert_many`` fast path or a
:class:`~repro.sharding.ShardedExecutor`'s router fan-out, one chunk at a time under
a lock — which is what makes :meth:`snapshot` sound: a snapshot taken mid-ingest
copies shard states that all correspond to the same chunk-aligned stream prefix, so
its merged report answers heavy-hitter queries about that prefix under the usual
(ε,ϕ) semantics.  See :mod:`repro.pipeline` for the full contract.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional

from repro.pipeline.producer import DEFAULT_CHUNK_ITEMS, DEFAULT_QUEUE_DEPTH, ChunkProducer
from repro.primitives.space import SpaceMeter
from repro.sharding.executor import ShardedExecutor
from repro.sharding.mergeable import merge_all


@dataclass
class PipelineSnapshot:
    """A consistent mid-ingest copy: the merged sketch and its report on the prefix.

    ``items_processed`` is the exact length of the stream prefix the snapshot
    reflects (chunk ingestion is atomic under the executor's lock, so the state is
    never a partial chunk); the report's Definition 1 thresholds are computed
    against that prefix length, because every sketch reports against its own
    ``items_processed``.
    """

    report: Any
    sketch: Any
    items_processed: int


@dataclass
class PipelinedRunResult:
    """Everything a pipelined run produces, with the time split by phase.

    ``ingest_seconds`` covers the queue-overlapped span (producer parsing ‖ consumer
    ``insert_many``) up to the last chunk landing in a sketch; ``combine_seconds``
    covers merge + space accounting + report.  ``max_queue_depth`` is the deepest
    producer backlog observed — ``queue_depth`` means the parser was ahead and the
    sketches were the bottleneck, 0–1 means parsing dominated and a deeper queue
    cannot help.
    """

    sketch: Any
    report: Any
    num_shards: int
    shard_sizes: List[int]
    items_processed: int
    chunks: int
    queue_depth: int
    max_queue_depth: int
    seconds: float
    ingest_seconds: float
    combine_seconds: float
    space: SpaceMeter = field(default_factory=SpaceMeter)

    def space_bits(self) -> int:
        """Combined space of the (merged) sketch state, in bits."""
        return self.space.total_bits()


class PipelinedExecutor:
    """Overlap stream parsing with sketch updates through a bounded chunk queue.

    Exactly one of ``sketch`` / ``executor`` selects the sink:

    * ``sketch`` — a single algorithm instance; every queued chunk feeds its
      ``insert_many`` fast path;
    * ``executor`` — a fresh :class:`~repro.sharding.ShardedExecutor`; every queued
      chunk goes through its router into the shard sketches
      (:meth:`~repro.sharding.ShardedExecutor.ingest_chunk`), and the end-of-stream
      merge/report is its :meth:`~repro.sharding.ShardedExecutor.combine`.

    The executor is single-shot, like the sharded one: :meth:`run` consumes the
    sink.  :meth:`snapshot` may be called from any thread while :meth:`run` is in
    flight (or before it); after :meth:`run` returns the merge has consumed the
    shard state, so snapshots are refused — use the result's report.
    """

    def __init__(
        self,
        sketch: Any = None,
        executor: Optional[ShardedExecutor] = None,
        chunk_size: int = DEFAULT_CHUNK_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ) -> None:
        if (sketch is None) == (executor is None):
            raise ValueError("provide exactly one of sketch= or executor=")
        self.sketch = sketch
        self.executor = executor
        self.chunk_size = chunk_size
        self.queue_depth = queue_depth
        self.num_shards = 1 if executor is None else executor.num_shards
        self.shard_sizes = [0] * self.num_shards
        self.items_processed = 0
        self._lock = threading.Lock()
        self._started = False
        self._finished = False

    # -- ingestion ----------------------------------------------------------------------

    def _ingest_chunk(self, chunk) -> None:
        """One chunk into the sink, atomically with respect to :meth:`snapshot`."""
        with self._lock:
            if self.executor is None:
                self.sketch.insert_many(chunk)
                self.shard_sizes[0] += len(chunk)
            else:
                for shard, delivered in enumerate(self.executor.ingest_chunk(chunk)):
                    self.shard_sizes[shard] += delivered
            self.items_processed += len(chunk)

    def run(
        self,
        source,
        report_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> PipelinedRunResult:
        """Replay ``source`` through the queue, then merge and report.

        ``source`` is anything :class:`ChunkProducer` accepts — a stream-file path
        (the motivating case: disk reads and ``int`` parsing overlap the sketch
        updates), a ``Stream``, an array, or an iterable.  A producer-side
        exception propagates out of this call as itself; the producer thread is
        joined on every exit path.
        """
        if self._started or self._finished:
            # _started alone (no _finished) means a previous run died mid-ingest;
            # the sketches hold that run's prefix, so re-running would double-count.
            raise RuntimeError(
                "this PipelinedExecutor has already run; build a fresh one per run"
            )
        self._started = True
        producer = ChunkProducer(
            source, chunk_size=self.chunk_size, queue_depth=self.queue_depth
        )
        chunks = 0
        start = time.perf_counter()
        try:
            for chunk in producer:
                self._ingest_chunk(chunk)
                chunks += 1
        finally:
            producer.close()
        ingest_seconds = time.perf_counter() - start
        with self._lock:
            self._finished = True
            if self.executor is None:
                report = self.sketch.report(**dict(report_kwargs or {}))
                self.sketch.refresh_space()
                merged, space = self.sketch, self.sketch.space
            else:
                merged, report, space = self.executor.combine(report_kwargs)
        combine_seconds = time.perf_counter() - start - ingest_seconds
        return PipelinedRunResult(
            sketch=merged,
            report=report,
            num_shards=self.num_shards,
            shard_sizes=list(self.shard_sizes),
            items_processed=self.items_processed,
            chunks=chunks,
            queue_depth=self.queue_depth,
            max_queue_depth=producer.max_queue_depth,
            seconds=ingest_seconds + combine_seconds,
            ingest_seconds=ingest_seconds,
            combine_seconds=combine_seconds,
            space=space,
        )

    # -- mid-ingest queries -------------------------------------------------------------

    def snapshot(
        self, report_kwargs: Optional[Mapping[str, Any]] = None
    ) -> PipelineSnapshot:
        """A consistent copy of the current state, merged, with its prefix report.

        Takes the ingestion lock, deep-copies the sketch (or the whole shard group
        in one pass, so shared hash functions stay shared in the copy), releases
        the lock, and merges/reports on the copy — ingestion is paused only for
        the copy, not for the report.  The copy reflects a chunk-aligned prefix of
        the stream; with a deterministic sketch (or within the (ε,ϕ) guarantee for
        the randomized ones) the report is exactly what a fresh run over that
        prefix would answer.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "ingestion has finished and the shards are merged; "
                    "use the run result's report"
                )
            items = self.items_processed
            if self.executor is None:
                copies = [copy.deepcopy(self.sketch)]
            else:
                copies = copy.deepcopy(self.executor.sketches)
        merged = merge_all(copies)
        report = merged.report(**dict(report_kwargs or {}))
        return PipelineSnapshot(report=report, sketch=merged, items_processed=items)
