"""The consumer half of the pipelined ingestion seam: queue-fed sketch updates.

:class:`PipelinedExecutor` drains a :class:`~repro.pipeline.producer.ChunkProducer`
into either a single sketch's ``insert_many`` fast path or a
:class:`~repro.sharding.ShardedExecutor`'s router fan-out, one chunk at a time under
a lock — which is what makes :meth:`snapshot` sound: a snapshot taken mid-ingest
copies shard states that all correspond to the same chunk-aligned stream prefix, so
its merged report answers heavy-hitter queries about that prefix under the usual
(ε,ϕ) semantics.  See :mod:`repro.pipeline` for the full contract.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.observability.metrics import MetricRegistry, resolve_registry
from repro.observability.tracing import Tracer, resolve_tracer

if TYPE_CHECKING:  # only for annotations: the executor itself never builds arrays
    import numpy as np
from repro.pipeline.producer import (
    DEFAULT_CHUNK_ITEMS,
    DEFAULT_QUEUE_DEPTH,
    ArrayBatchSource,
    ChunkProducer,
)
from repro.primitives.space import SpaceMeter
from repro.sharding.executor import ShardedExecutor
from repro.sharding.mergeable import merge_all


@dataclass
class SinkState:
    """A chunk-aligned, self-contained copy of a pipelined run's ingestion state.

    This is the unit of checkpointing: everything needed to resume ingestion in a
    fresh process — the (un-merged) shard sketches, their router, and the prefix
    accounting — captured atomically under the ingestion lock by
    :meth:`PipelinedExecutor.sink_state` and adopted by
    :meth:`PipelinedExecutor.from_sink_state`.  The service layer's
    :class:`~repro.service.Checkpointer` pickles exactly this object (plus a config
    manifest) to disk.

    Note the randomness caveat: the capture deep-copies the sketches, and a
    :class:`~repro.primitives.rng.RandomSource` deep-copies (and pickles) as a
    deterministically *re-seeded* sibling — see :mod:`repro.primitives.rng`.  A
    resumed run is therefore bit-for-bit reproducible (capturing the same state
    twice yields identical resumptions) but does not replay the uninterrupted
    original's future random draws; deterministic sketches (Misra–Gries and
    friends) resume bit-for-bit identical to the uninterrupted run as well.
    """

    kind: str  # "single" or "sharded"
    sketches: List[Any]
    router: Any  # ShardRouter for "sharded", None for "single"
    items_processed: int
    shard_sizes: List[int]
    chunks: int


@dataclass
class PipelineSnapshot:
    """A consistent mid-ingest copy: the merged sketch and its report on the prefix.

    ``items_processed`` is the exact length of the stream prefix the snapshot
    reflects (chunk ingestion is atomic under the executor's lock, so the state is
    never a partial chunk); the report's Definition 1 thresholds are computed
    against that prefix length, because every sketch reports against its own
    ``items_processed``.
    """

    report: Any
    sketch: Any
    items_processed: int


@dataclass
class PipelinedRunResult:
    """Everything a pipelined run produces, with the time split by phase.

    ``ingest_seconds`` covers the queue-overlapped span (producer parsing ‖ consumer
    ``insert_many``) up to the last chunk landing in a sketch; ``combine_seconds``
    covers merge + space accounting + report.  ``max_queue_depth`` is the deepest
    producer backlog observed — ``queue_depth`` means the parser was ahead and the
    sketches were the bottleneck, 0–1 means parsing dominated and a deeper queue
    cannot help.
    """

    sketch: Any
    report: Any
    num_shards: int
    shard_sizes: List[int]
    items_processed: int
    chunks: int
    queue_depth: int
    max_queue_depth: int
    seconds: float
    ingest_seconds: float
    combine_seconds: float
    space: SpaceMeter = field(default_factory=SpaceMeter)

    def space_bits(self) -> int:
        """Combined space of the (merged) sketch state, in bits."""
        return self.space.total_bits()


class PipelinedExecutor:
    """Overlap stream parsing with sketch updates through a bounded chunk queue.

    Exactly one of ``sketch`` / ``executor`` selects the sink:

    * ``sketch`` — a single algorithm instance; every queued chunk feeds its
      ``insert_many`` fast path;
    * ``executor`` — a fresh :class:`~repro.sharding.ShardedExecutor`; every queued
      chunk goes through its router into the shard sketches
      (:meth:`~repro.sharding.ShardedExecutor.ingest_chunk`), and the end-of-stream
      merge/report is its :meth:`~repro.sharding.ShardedExecutor.combine`.

    The executor is single-shot, like the sharded one: :meth:`run` consumes the
    sink.  :meth:`snapshot` may be called from any thread while :meth:`run` is in
    flight (or before it); after :meth:`run` returns the merge has consumed the
    shard state, so snapshots are refused — use the result's report.
    """

    def __init__(
        self,
        sketch: Any = None,
        executor: Optional[ShardedExecutor] = None,
        chunk_size: int = DEFAULT_CHUNK_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if (sketch is None) == (executor is None):
            raise ValueError("provide exactly one of sketch= or executor=")
        self._registry = resolve_registry(registry)
        self._tracer = resolve_tracer(tracer)
        self._metric_chunks = self._registry.counter(
            "repro_pipeline_chunks_total", "Chunks ingested into pipelined sinks."
        )
        self._metric_items = self._registry.counter(
            "repro_pipeline_items_total", "Stream items ingested into pipelined sinks."
        )
        self._metric_ingest_seconds = self._registry.histogram(
            "repro_pipeline_chunk_ingest_seconds",
            "Per-chunk sketch-update latency (time spent in ingest_chunk).",
        )
        self._metric_cache_hits = self._registry.counter(
            "repro_pipeline_snapshot_cache_hits_total",
            "Mid-ingest snapshot queries served from the versioned cache.",
        )
        self._metric_cache_misses = self._registry.counter(
            "repro_pipeline_snapshot_cache_misses_total",
            "Mid-ingest snapshot queries that paid the deepcopy + merge.",
        )
        self._metric_snapshot_seconds = self._registry.histogram(
            "repro_pipeline_snapshot_seconds",
            "Mid-ingest snapshot latency (copy + merge + report, or cache hit).",
        )
        self.sketch = sketch
        self.executor = executor
        self.chunk_size = chunk_size
        self.queue_depth = queue_depth
        self.num_shards = 1 if executor is None else executor.num_shards
        self.shard_sizes = [0] * self.num_shards
        self.items_processed = 0
        self._lock = threading.Lock()
        self._started = False
        self._finished = False
        self._chunks_ingested = 0
        self._max_queue_depth = 0
        self._ingest_started_at: Optional[float] = None
        # Versioned snapshot cache: the merged copy (and its reports) produced by
        # the last snapshot(), tagged with the _chunks_ingested it reflects.  A
        # repeated query at an unchanged prefix reuses it (no deepcopy, no merge);
        # ingestion advancing invalidates it lazily (copy-on-write: the next
        # query pays the copy again).  Guarded by _snapshot_lock, not _lock, so
        # cache bookkeeping never extends the ingestion pause.
        self._snapshot_lock = threading.Lock()
        self._snapshot_cache: Optional[Dict[str, Any]] = None
        self.snapshot_cache_hits = 0
        self.snapshot_cache_misses = 0

    # -- ingestion ----------------------------------------------------------------------

    def ingest_chunk(self, chunk: Union[np.ndarray, Sequence[int]]) -> None:
        """One chunk into the sink, atomically with respect to :meth:`snapshot`.

        The single-chunk unit of :meth:`run`, public so an external loop (the
        service layer's offline checkpoint replay, a test harness) can drive
        ingestion chunk by chunk; call :meth:`finalize` when the stream is
        exhausted.  Driving an executor manually claims it, so a later :meth:`run`
        on the same instance refuses rather than double-ingesting.

        Raises:
            RuntimeError: if :meth:`finalize` (or :meth:`run`) already consumed
                the sink.
        """
        # One flag read decides whether to read the clock: with metrics disabled
        # and no tracer this method is byte-for-byte the pre-observability path.
        observe = self._registry.enabled or self._tracer.enabled
        started = time.perf_counter() if observe else 0.0
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "this PipelinedExecutor has already merged its sink; "
                    "build a fresh one per run"
                )
            self._started = True
            if self._ingest_started_at is None:
                self._ingest_started_at = time.perf_counter()
            if self.executor is None:
                self.sketch.insert_many(chunk)
                self.shard_sizes[0] += len(chunk)
            else:
                for shard, delivered in enumerate(self.executor.ingest_chunk(chunk)):
                    self.shard_sizes[shard] += delivered
            self.items_processed += len(chunk)
            self._chunks_ingested += 1
            index = self._chunks_ingested - 1
        if observe:
            seconds = time.perf_counter() - started
            self._metric_chunks.inc()
            self._metric_items.inc(len(chunk))
            self._metric_ingest_seconds.observe(seconds)
            if self._tracer.enabled:
                self._tracer.emit(
                    "ingest", seconds=seconds, chunk=index, items=len(chunk)
                )

    def resume_after_ingest(self) -> None:
        """Re-arm the one permitted :meth:`run` after driver-side chunk replay.

        :meth:`ingest_chunk` claims the executor so an accidental later ``run``
        cannot double-ingest.  Crash recovery, however, replays journal chunks
        through :meth:`ingest_chunk` *deliberately* and then hands the executor
        to a server whose queue-driven run covers the remaining tail — the same
        adopted-prefix situation :meth:`from_sink_state` produces, minus the
        serialization round-trip.  Accounting is already correct (the replay
        incremented ``items_processed``), so re-arming is just clearing the
        claim.

        Raises:
            RuntimeError: if the sink was already merged — there is no tail
                left to run.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "this PipelinedExecutor has already merged its sink; "
                    "there is nothing left to resume"
                )
            self._started = False

    def finalize(
        self, report_kwargs: Optional[Mapping[str, Any]] = None
    ) -> PipelinedRunResult:
        """Merge the sink, account space, and report — the end-of-stream step.

        Called by :meth:`run` after the producer is exhausted, and directly by
        external loops that drove :meth:`ingest_chunk` themselves.  Single-shot:
        the merge consumes the shard state, so further ingestion, snapshots, and
        finalizes all refuse afterwards.

        Args:
            report_kwargs: forwarded to the merged sketch's ``report()`` (e.g.
                ``{"phi": 0.05}`` for sketches that take the threshold at report
                time).

        Returns:
            The :class:`PipelinedRunResult` for everything ingested so far.

        Raises:
            RuntimeError: on a second finalize of the same executor.
        """
        now = time.perf_counter()
        started = self._ingest_started_at if self._ingest_started_at is not None else now
        ingest_seconds = now - started
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "this PipelinedExecutor has already merged its sink; "
                    "build a fresh one per run"
                )
            self._finished = True
            self._snapshot_cache = None  # snapshots are refused from here on
            if self.executor is None:
                report = self.sketch.report(**dict(report_kwargs or {}))
                self.sketch.refresh_space()
                merged, space = self.sketch, self.sketch.space
            else:
                merged, report, space = self.executor.combine(report_kwargs)
        combine_seconds = time.perf_counter() - now
        if self._tracer.enabled:
            self._tracer.emit(
                "combine",
                seconds=combine_seconds,
                chunks=self._chunks_ingested,
                items=self.items_processed,
            )
        return PipelinedRunResult(
            sketch=merged,
            report=report,
            num_shards=self.num_shards,
            shard_sizes=list(self.shard_sizes),
            items_processed=self.items_processed,
            chunks=self._chunks_ingested,
            queue_depth=self.queue_depth,
            max_queue_depth=self._max_queue_depth,
            seconds=ingest_seconds + combine_seconds,
            ingest_seconds=ingest_seconds,
            combine_seconds=combine_seconds,
            space=space,
        )

    def run(
        self,
        source: Any,
        report_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> PipelinedRunResult:
        """Replay ``source`` through the queue, then merge and report.

        ``source`` is anything :class:`ChunkProducer` accepts — a stream-file path
        (the motivating case: disk reads and ``int`` parsing overlap the sketch
        updates), a ``Stream``, an array, an iterable, or an
        :class:`~repro.pipeline.producer.ArrayBatchSource` of pre-built batches
        (the network ingest case).  A producer-side exception propagates out of
        this call as itself; the producer thread is joined on every exit path.

        Raises:
            RuntimeError: if this executor already ran (or was driven through
                :meth:`ingest_chunk`) — the sketches hold that prefix, so
                re-running would double-count.
        """
        with self._lock:
            # Check-and-claim atomically: two threads racing run() must see
            # exactly one winner, or both would ingest into the same sketches.
            if self._started or self._finished:
                # _started alone (no _finished) means a previous run died mid-ingest;
                # the sketches hold that run's prefix, so re-running would double-count.
                raise RuntimeError(
                    "this PipelinedExecutor has already run; build a fresh one per run"
                )
            self._started = True
        producer = ChunkProducer(
            source,
            chunk_size=self.chunk_size,
            queue_depth=self.queue_depth,
            registry=self._registry,
            tracer=self._tracer,
        )
        if not isinstance(source, ArrayBatchSource):
            # Replay sources (paths, streams, iterables): the producer starts
            # parsing immediately, so the ingest span begins now.  Push-driven
            # sources are paced by remote clients — idle time waiting for the
            # first batch is not ingest work, so the stamp waits for the first
            # chunk (ingest_chunk sets it lazily, under the same lock).
            with self._lock:
                self._ingest_started_at = time.perf_counter()
        try:
            for chunk in producer:
                self.ingest_chunk(chunk)
        finally:
            producer.close()
        self._max_queue_depth = producer.max_queue_depth
        return self.finalize(report_kwargs)

    # -- mid-ingest queries -------------------------------------------------------------

    def snapshot(
        self, report_kwargs: Optional[Mapping[str, Any]] = None
    ) -> PipelineSnapshot:
        """A consistent copy of the current state, merged, with its prefix report.

        Takes the ingestion lock, deep-copies the sketch (or the whole shard group
        in one pass, so shared hash functions stay shared in the copy), releases
        the lock, and merges/reports on the copy — ingestion is paused only for
        the copy, not for the report.  The copy reflects a chunk-aligned prefix of
        the stream; with a deterministic sketch (or within the (ε,ϕ) guarantee for
        the randomized ones) the report is exactly what a fresh run over that
        prefix would answer.

        Snapshots are **cached by prefix version**: each merged copy is tagged
        with the ``chunks_ingested`` count it reflects, and while no further
        chunk has landed, repeated calls reuse it — a repeated query at a fixed
        prefix costs one small report copy instead of a sketch deepcopy, and a
        call with different ``report_kwargs`` re-reports on the cached merged
        sketch without re-copying.  Once ingestion advances, the next call pays
        the copy again (copy-on-write invalidation).  The consistency rule: a
        cached snapshot is served if and only if it describes exactly the
        current chunk-aligned prefix, so caching is invisible in the answers —
        including under mutation, because every returned ``report`` is a
        private copy.  ``snapshot.sketch`` *is* the shared cached merge: treat
        it as read-only (copying it would be the deepcopy the cache avoids).
        Concurrent snapshot calls are serialized on the cache lock; they never
        extend the ingestion pause beyond the one deep copy.
        """
        observe = self._registry.enabled or self._tracer.enabled
        if not observe:
            return self._snapshot_impl(report_kwargs)
        started = time.perf_counter()
        hits_before = self.snapshot_cache_hits
        snap = self._snapshot_impl(report_kwargs)
        seconds = time.perf_counter() - started
        self._metric_snapshot_seconds.observe(seconds)
        if self._tracer.enabled:
            self._tracer.emit(
                "snapshot",
                seconds=seconds,
                items=snap.items_processed,
                cached=self.snapshot_cache_hits > hits_before,
            )
        return snap

    def _snapshot_impl(
        self, report_kwargs: Optional[Mapping[str, Any]] = None
    ) -> PipelineSnapshot:
        kwargs = dict(report_kwargs or {})
        try:
            key: Optional[Tuple[Tuple[str, Any], ...]] = tuple(sorted(kwargs.items()))
            hash(key)  # an unhashable kwarg *value* only surfaces here
        except TypeError:  # unhashable report kwargs: skip the report-level cache
            key = None
        with self._snapshot_lock:
            copies: Optional[List[Any]] = None
            with self._lock:
                if self._finished:
                    raise RuntimeError(
                        "ingestion has finished and the shards are merged; "
                        "use the run result's report"
                    )
                version = self._chunks_ingested
                items = self.items_processed
                cache = self._snapshot_cache
                if cache is not None and cache["version"] == version:
                    cached_report = cache["reports"].get(key) if key is not None else None
                    if cached_report is not None:
                        self.snapshot_cache_hits += 1
                        self._metric_cache_hits.inc()
                        # Deep-copy the handed-out report (it is small — the
                        # reported heavy hitters): a caller mutating its answer
                        # must never change what later queries are served.  The
                        # merged sketch stays shared — copying it would be the
                        # very deepcopy the cache exists to avoid — so treat
                        # snapshot.sketch as read-only.
                        return PipelineSnapshot(
                            report=copy.deepcopy(cached_report),
                            sketch=cache["sketch"],
                            items_processed=cache["items"],
                        )
                else:
                    cache = None
                    if self.executor is None:
                        copies = [copy.deepcopy(self.sketch)]
                    else:
                        copies = copy.deepcopy(self.executor.sketches)
            # Merge and report outside the ingestion lock: ingestion continues.
            if cache is None:
                assert copies is not None  # cleared and copied together under the lock
                self.snapshot_cache_misses += 1
                self._metric_cache_misses.inc()
                cache = {
                    "version": version,
                    "items": items,
                    "sketch": merge_all(copies),
                    "reports": {},
                }
                with self._lock:
                    # A finalize() racing this merge already cleared the cache;
                    # storing ours would resurrect a merged copy nobody can ever
                    # read again (snapshots refuse after finish).
                    if not self._finished:
                        self._snapshot_cache = cache
            else:
                # Same prefix, new report kwargs: reuse the merged copy, only
                # the report is recomputed — still no deepcopy.
                self.snapshot_cache_hits += 1
                self._metric_cache_hits.inc()
            report = cache["sketch"].report(**kwargs)
            if key is not None:
                cache["reports"][key] = report
            return PipelineSnapshot(
                report=copy.deepcopy(report),
                sketch=cache["sketch"],
                items_processed=cache["items"],
            )

    # -- checkpoint / restore -----------------------------------------------------------

    def sink_state(self) -> SinkState:
        """Capture a chunk-aligned copy of the ingestion state for checkpointing.

        Takes the ingestion lock and deep-copies the un-merged sink — the single
        sketch, or the whole shard group *and* its router in one pass (so hash
        functions shared across shards stay shared in the copy) — then releases the
        lock; ingestion is paused only for the copy.  Unlike :meth:`snapshot`, the
        copies are **not** merged: a checkpoint must be resumable, and the merge
        consumes shard state.  See :class:`SinkState` for the randomness caveat.

        Returns:
            A :class:`SinkState` reflecting a chunk-aligned prefix of the stream.

        Raises:
            RuntimeError: after :meth:`finalize`/:meth:`run` — the merge has
                consumed the shard state, so there is nothing left to checkpoint.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "ingestion has finished and the shards are merged; "
                    "there is no resumable state left to checkpoint"
                )
            if self.executor is None:
                sketches, router, kind = [copy.deepcopy(self.sketch)], None, "single"
            else:
                sketches, router = copy.deepcopy(
                    (self.executor.sketches, self.executor.router)
                )
                kind = "sharded"
            return SinkState(
                kind=kind,
                sketches=list(sketches),
                router=router,
                items_processed=self.items_processed,
                shard_sizes=list(self.shard_sizes),
                chunks=self._chunks_ingested,
            )

    @classmethod
    def from_sink_state(
        cls,
        state: SinkState,
        chunk_size: int = DEFAULT_CHUNK_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> "PipelinedExecutor":
        """Rebuild an executor around a captured :class:`SinkState` and resume.

        The state's sketches/router are adopted as-is (not copied) — restore from
        a pickled checkpoint, or pass a fresh :meth:`sink_state` capture to fork a
        run in-process.  The returned executor continues exactly where the capture
        left off: ``items_processed``/``shard_sizes`` carry over, and one
        :meth:`run` (or :meth:`ingest_chunk` loop + :meth:`finalize`) over the
        remaining stream produces a result whose report covers the whole stream.

        Args:
            state: a capture from :meth:`sink_state` (typically via
                :class:`~repro.service.Checkpointer`).
            chunk_size: chunk granularity for the resumed ingestion — use the
                original run's value to keep resumed chunk boundaries aligned
                with an uninterrupted replay.
            queue_depth: producer queue bound for the resumed ingestion.

        Raises:
            ValueError: if the state's ``kind`` is unknown.
        """
        if state.kind == "single":
            resumed = cls(
                sketch=state.sketches[0],
                chunk_size=chunk_size,
                queue_depth=queue_depth,
                registry=registry,
                tracer=tracer,
            )
        elif state.kind == "sharded":
            resumed = cls(
                executor=ShardedExecutor.from_shards(state.sketches, state.router),
                chunk_size=chunk_size,
                queue_depth=queue_depth,
                registry=registry,
                tracer=tracer,
            )
        else:
            raise ValueError(f"unknown sink state kind {state.kind!r}")
        resumed.items_processed = state.items_processed
        resumed.shard_sizes = list(state.shard_sizes)
        resumed._chunks_ingested = state.chunks
        # _started stays False: the adopted prefix is accounted for, and the one
        # permitted run()/finalize() on this instance is the resumed tail.
        return resumed
