"""A light container for an insertion-only stream and its metadata.

The items are backed by a contiguous int64 numpy array (the batched ingestion path
feeds whole slices of it to ``insert_many`` without copying), but the container keeps a
``Sequence[int]`` facade: iteration yields plain Python ints, indexing returns ints,
and slicing-based helpers (:meth:`Stream.prefix`, :meth:`Stream.concatenate`) behave as
they did when the backing was a list.  Nothing about the reproduction depends on the
stream being materialized — the algorithms consume any iterable one item (or one chunk)
at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

import numpy as np


@dataclass
class Stream:
    """An insertion-only stream of integer items over the universe ``[0, universe_size)``."""

    items: Sequence[int]
    universe_size: int
    name: str = "stream"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.universe_size <= 0:
            raise ValueError("universe_size must be positive")
        array = np.asarray(self.items)
        if array.dtype != np.int64:
            array = array.astype(np.int64)
        array = np.atleast_1d(array).reshape(-1)
        if array.size:
            low, high = int(array.min()), int(array.max())
            if low < 0 or high >= self.universe_size:
                offending = array[(array < 0) | (array >= self.universe_size)]
                raise ValueError(
                    f"stream item {int(offending[0])} outside universe [0, {self.universe_size})"
                )
        self.items = array

    @property
    def array(self) -> np.ndarray:
        """The int64 numpy backing, shared (not copied) — the batched fast path input."""
        return self.items

    def __len__(self) -> int:
        return int(self.items.size)

    def __iter__(self) -> Iterator[int]:
        return map(int, self.items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.items[index]
        return int(self.items[index])

    @property
    def length(self) -> int:
        return len(self)

    def tolist(self) -> list:
        """The items as a plain list of Python ints."""
        return self.items.tolist()

    def prefix(self, length: int) -> "Stream":
        """The first ``length`` items as a new stream (same universe)."""
        return Stream(
            items=self.items[:length].copy(),
            universe_size=self.universe_size,
            name=f"{self.name}[:{length}]",
            metadata=dict(self.metadata),
        )

    def concatenate(self, other: "Stream", name: Optional[str] = None) -> "Stream":
        """This stream followed by another over the same (or compatible) universe."""
        universe = max(self.universe_size, other.universe_size)
        return Stream(
            items=np.concatenate([self.array, other.array]),
            universe_size=universe,
            name=name or f"{self.name}+{other.name}",
            metadata={**self.metadata, **other.metadata},
        )

    @classmethod
    def from_items(cls, items: Sequence[int], universe_size: Optional[int] = None, name: str = "stream") -> "Stream":
        """Build a stream from raw items, inferring the universe size if not given."""
        array = np.atleast_1d(np.asarray(list(items) if not hasattr(items, "__len__") else items)).reshape(-1)
        array = array.astype(np.int64) if array.dtype != np.int64 else array
        if universe_size is None:
            universe_size = (int(array.max()) + 1) if array.size else 1
        return cls(items=array, universe_size=universe_size, name=name)
