"""A light container for an insertion-only stream and its metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass
class Stream:
    """An insertion-only stream of integer items over the universe ``[0, universe_size)``.

    The items are materialized in memory (these are synthetic benchmark streams, not the
    internet traffic the paper motivates), but all algorithms consume them one at a time
    through the single-pass interface, so nothing about the reproduction depends on the
    stream being materialized.
    """

    items: List[int]
    universe_size: int
    name: str = "stream"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.universe_size <= 0:
            raise ValueError("universe_size must be positive")
        for item in self.items:
            if not 0 <= item < self.universe_size:
                raise ValueError(
                    f"stream item {item} outside universe [0, {self.universe_size})"
                )

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[int]:
        return iter(self.items)

    def __getitem__(self, index: int) -> int:
        return self.items[index]

    @property
    def length(self) -> int:
        return len(self.items)

    def prefix(self, length: int) -> "Stream":
        """The first ``length`` items as a new stream (same universe)."""
        return Stream(
            items=list(self.items[:length]),
            universe_size=self.universe_size,
            name=f"{self.name}[:{length}]",
            metadata=dict(self.metadata),
        )

    def concatenate(self, other: "Stream", name: Optional[str] = None) -> "Stream":
        """This stream followed by another over the same (or compatible) universe."""
        universe = max(self.universe_size, other.universe_size)
        return Stream(
            items=list(self.items) + list(other.items),
            universe_size=universe,
            name=name or f"{self.name}+{other.name}",
            metadata={**self.metadata, **other.metadata},
        )

    @classmethod
    def from_items(cls, items: Sequence[int], universe_size: Optional[int] = None, name: str = "stream") -> "Stream":
        """Build a stream from raw items, inferring the universe size if not given."""
        materialized = list(items)
        if universe_size is None:
            universe_size = (max(materialized) + 1) if materialized else 1
        return cls(items=materialized, universe_size=universe_size, name=name)
