"""Synthetic insertion-only streams and exact ground-truth oracles.

The paper evaluates nothing empirically (it is a theory paper), but its motivation —
network flow identification, iceberg queries, frequent itemsets, voting streams — fixes
the workloads a reproduction should exercise: skewed (Zipfian) item streams, streams
with planted heavy hitters, adversarially ordered streams (the paper explicitly makes no
ordering assumption), and the two-phase "Alice then Bob" gadget streams used by the
lower-bound reductions.

:mod:`repro.streams.generators` builds these streams, :mod:`repro.streams.stream` wraps
them with metadata, and :mod:`repro.streams.truth` computes exact statistics for
evaluating the approximate algorithms.
"""

from repro.streams.stream import Stream
from repro.streams.truth import exact_frequencies, exact_maximum, exact_minimum, top_k
from repro.streams.generators import (
    uniform_stream,
    zipfian_stream,
    planted_heavy_hitters_stream,
    planted_maximum_stream,
    adversarial_block_stream,
    two_phase_stream,
)
from repro.streams.io import (
    save_stream,
    load_stream,
    save_election,
    load_election,
    iterate_stream_file,
    iterate_stream_file_chunks,
    stream_file_metadata,
    stream_file_statistics,
)

__all__ = [
    "Stream",
    "exact_frequencies",
    "exact_maximum",
    "exact_minimum",
    "top_k",
    "uniform_stream",
    "zipfian_stream",
    "planted_heavy_hitters_stream",
    "planted_maximum_stream",
    "adversarial_block_stream",
    "two_phase_stream",
    "save_stream",
    "load_stream",
    "save_election",
    "load_election",
    "iterate_stream_file",
    "iterate_stream_file_chunks",
    "stream_file_metadata",
    "stream_file_statistics",
]
