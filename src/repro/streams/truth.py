"""Exact statistics of a stream, used as ground truth by tests and benchmarks."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple


def exact_frequencies(stream: Iterable[int]) -> Dict[int, int]:
    """Exact frequency of every item that appears in the stream."""
    return dict(Counter(stream))


def exact_maximum(stream: Iterable[int]) -> Tuple[Optional[int], int]:
    """The (item, frequency) pair of a maximum-frequency item; ``(None, 0)`` if empty.

    Ties are broken towards the smallest item id so the answer is deterministic.
    """
    counts = exact_frequencies(stream)
    if not counts:
        return None, 0
    best_item = min(counts, key=lambda item: (-counts[item], item))
    return best_item, counts[best_item]


def exact_minimum(stream: Iterable[int], universe_size: int) -> Tuple[int, int]:
    """The (item, frequency) pair of a minimum-frequency item over the whole universe.

    Items that never appear have frequency zero and are valid answers (paper
    Section 1.2); ties are broken towards the smallest item id.
    """
    counts = exact_frequencies(stream)
    if len(counts) < universe_size:
        for item in range(universe_size):
            if item not in counts:
                return item, 0
    best_item = min(counts, key=lambda item: (counts[item], item))
    return best_item, counts[best_item]


def top_k(stream: Iterable[int], k: int) -> List[Tuple[int, int]]:
    """The ``k`` most frequent items with their exact counts (deterministic order)."""
    counts = exact_frequencies(stream)
    ordered = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    return ordered[:k]


def heavy_hitters(stream: Iterable[int], phi: float) -> Dict[int, int]:
    """All items whose frequency exceeds ``phi`` times the stream length."""
    items = list(stream)
    counts = exact_frequencies(items)
    threshold = phi * len(items)
    return {item: count for item, count in counts.items() if count > threshold}
