"""Synthetic stream generators for the benchmark and test workloads.

All generators are deterministic given a :class:`~repro.primitives.rng.RandomSource`
seed and return :class:`~repro.streams.stream.Stream` objects carrying metadata about
how they were built (so EXPERIMENTS.md can record workload parameters exactly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.primitives.rng import RandomSource
from repro.streams.stream import Stream


def uniform_stream(
    length: int,
    universe_size: int,
    rng: Optional[RandomSource] = None,
    name: str = "uniform",
) -> Stream:
    """Each item drawn independently and uniformly from the universe."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = rng if rng is not None else RandomSource()
    items = rng.numpy_generator().integers(0, universe_size, size=length, dtype=np.int64)
    return Stream(items=items, universe_size=universe_size, name=name, metadata={"kind": "uniform"})


def zipfian_stream(
    length: int,
    universe_size: int,
    skew: float = 1.1,
    rng: Optional[RandomSource] = None,
    name: str = "zipf",
) -> Stream:
    """Items drawn from a Zipf(skew) distribution over the universe.

    Zipfian streams are the standard model for the network-traffic and iceberg-query
    workloads the paper's introduction motivates: a few very frequent items and a long
    tail.  Item ``i`` has probability proportional to ``1 / (i+1)^skew``.

    The cumulative distribution is computed once (one vectorized pass over the
    universe) and every draw is inverse-CDF sampled with a binary search
    (``np.searchsorted``), so generating a stream costs ``O(n + m log n)`` instead of
    the former per-draw weight-list rebuild.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = rng if rng is not None else RandomSource()
    cumulative = zipf_cumulative_weights(universe_size, skew)
    generator = rng.numpy_generator()
    targets = generator.random(length)
    items = np.searchsorted(cumulative, targets, side="left")
    np.clip(items, 0, universe_size - 1, out=items)
    return Stream(
        items=items.astype(np.int64),
        universe_size=universe_size,
        name=name,
        metadata={"kind": "zipf", "skew": skew},
    )


def zipf_cumulative_weights(universe_size: int, skew: float) -> np.ndarray:
    """The normalized Zipf(skew) CDF over ``[0, universe_size)``, computed once.

    Exposed so callers drawing repeatedly from the same distribution (benchmark
    harnesses, sharded generators) can amortize the ``O(universe_size)`` setup.
    """
    weights = np.power(np.arange(1, universe_size + 1, dtype=np.float64), -skew)
    cumulative = np.cumsum(weights)
    cumulative /= cumulative[-1]
    return cumulative


def planted_heavy_hitters_stream(
    length: int,
    universe_size: int,
    heavy_items: Dict[int, float],
    rng: Optional[RandomSource] = None,
    name: str = "planted",
    shuffle: bool = True,
) -> Stream:
    """A stream with specified relative frequencies for chosen heavy items.

    ``heavy_items`` maps item id to its target relative frequency; the rest of the
    stream is filled with uniformly random light items (those not in ``heavy_items``),
    so the heavy set is exactly known.  This is the workload used by the correctness
    benchmarks: the ground-truth heavy-hitter set is planted by construction.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    total_heavy_fraction = sum(heavy_items.values())
    if total_heavy_fraction > 1.0 + 1e-9:
        raise ValueError("planted relative frequencies sum to more than 1")
    rng = rng if rng is not None else RandomSource()
    parts: List[np.ndarray] = []
    for item, fraction in heavy_items.items():
        if not 0 <= item < universe_size:
            raise ValueError(f"heavy item {item} outside universe")
        parts.append(np.full(int(round(fraction * length)), item, dtype=np.int64))
    heavy_total = int(sum(part.size for part in parts))
    if heavy_total < length:
        light_candidates = np.setdiff1d(
            np.arange(universe_size, dtype=np.int64),
            np.fromiter(heavy_items.keys(), dtype=np.int64, count=len(heavy_items)),
        )
        if light_candidates.size == 0:
            raise ValueError("no light items available to fill the stream")
        generator = rng.numpy_generator()
        slots = generator.integers(0, light_candidates.size, size=length - heavy_total)
        parts.append(light_candidates[slots])
    items = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    items = items[:length]
    if shuffle:
        items = items[rng.numpy_generator().permutation(items.size)]
    return Stream(
        items=items,
        universe_size=universe_size,
        name=name,
        metadata={"kind": "planted", "heavy_items": dict(heavy_items)},
    )


def planted_maximum_stream(
    length: int,
    universe_size: int,
    maximum_item: int,
    maximum_fraction: float,
    runner_up_fraction: Optional[float] = None,
    rng: Optional[RandomSource] = None,
    name: str = "planted-max",
) -> Stream:
    """A stream whose unique maximum-frequency item is planted with a known margin.

    Used by the ε-Maximum experiments: the maximum item gets ``maximum_fraction`` of the
    stream, an (optional) runner-up gets ``runner_up_fraction``, and the rest is uniform
    noise over the remaining universe.
    """
    if not 0 <= maximum_item < universe_size:
        raise ValueError("maximum_item outside universe")
    if not 0.0 < maximum_fraction <= 1.0:
        raise ValueError("maximum_fraction must be in (0, 1]")
    heavy: Dict[int, float] = {maximum_item: maximum_fraction}
    if runner_up_fraction is not None and universe_size > 1:
        runner_up = (maximum_item + 1) % universe_size
        heavy[runner_up] = runner_up_fraction
    return planted_heavy_hitters_stream(
        length=length,
        universe_size=universe_size,
        heavy_items=heavy,
        rng=rng,
        name=name,
    )


def adversarial_block_stream(
    length: int,
    universe_size: int,
    heavy_items: Dict[int, float],
    rng: Optional[RandomSource] = None,
    name: str = "adversarial-blocks",
) -> Stream:
    """A planted stream delivered in sorted blocks (all copies of an item contiguous).

    The paper explicitly makes no assumption on stream order; block order is the classic
    adversarial arrival pattern for counter-based algorithms (all heavy items arrive
    after the table has been filled by light ones).  Light items arrive first, then the
    heavy items in increasing order of weight.
    """
    planted = planted_heavy_hitters_stream(
        length=length,
        universe_size=universe_size,
        heavy_items=heavy_items,
        rng=rng,
        name=name,
        shuffle=False,
    )
    values, counts = np.unique(planted.array, return_counts=True)
    light_first = np.lexsort((values, counts))  # ascending (count, item), light items first
    items = np.repeat(values[light_first], counts[light_first])
    return Stream(
        items=items,
        universe_size=universe_size,
        name=name,
        metadata={"kind": "adversarial-blocks", "heavy_items": dict(heavy_items)},
    )


def two_phase_stream(
    alice_items: Sequence[int],
    bob_items: Sequence[int],
    universe_size: int,
    name: str = "two-phase",
) -> Stream:
    """Alice's items followed by Bob's items — the shape of every lower-bound gadget.

    The communication-complexity reductions in Section 4 of the paper all build streams
    of this form: Alice encodes her input as a prefix, sends the algorithm state, and
    Bob appends a suffix determined by his input.
    """
    items = list(alice_items) + list(bob_items)
    return Stream(
        items=items,
        universe_size=universe_size,
        name=name,
        metadata={"kind": "two-phase", "alice_length": len(alice_items), "bob_length": len(bob_items)},
    )


def exponential_lengths(minimum: int, maximum: int, base: float = 2.0) -> List[int]:
    """Geometrically spaced stream lengths, used by the log log m scaling experiments."""
    if minimum <= 0 or maximum < minimum:
        raise ValueError("need 0 < minimum <= maximum")
    lengths: List[int] = []
    value = float(minimum)
    while value <= maximum:
        lengths.append(int(round(value)))
        value *= base
    if lengths[-1] != maximum:
        lengths.append(maximum)
    return lengths
