"""Reading and writing streams and elections to disk.

The benchmark workloads are synthetic, but a downstream user of the library will want to
run the algorithms over their own traces (a packet log, a query log, a file of ballots).
These helpers define two minimal, dependency-free on-disk formats:

* **item streams** — one integer item id per line, preceded by header comment lines:
  ``# universe_size: <int>`` and ``# name: <text>`` (always written), plus one
  ``# meta <key>: <repr(value)>`` line per :attr:`Stream.metadata` entry (values are
  Python reprs, parsed back with :func:`ast.literal_eval`);
* **elections** — one vote per line, the candidate ids in preference order separated by
  spaces, with an optional ``# candidates: n`` header.

Both formats round-trip exactly through :func:`save_stream`/:func:`load_stream` and
:func:`save_election`/:func:`load_election` (for metadata: exactly for values whose
repr is a literal — numbers, strings, bools, ``None``, tuples/lists/dicts of those —
and degrading to the repr string otherwise).  Unknown ``#`` comment lines are
ignored on read, so the files tolerate hand-added annotations.

Three readers serve the three consumption patterns: :func:`load_stream` materializes
a :class:`~repro.streams.stream.Stream`; :func:`iterate_stream_file` yields items
one at a time with O(1) memory; :func:`iterate_stream_file_chunks` yields numpy
batches for the ``insert_many``/sharded/pipelined fast paths.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.primitives.batching import iter_chunks
from repro.streams.stream import Stream
from repro.voting.elections import Election
from repro.voting.rankings import Ranking


def save_stream(stream: Stream, path: str) -> None:
    """Write a stream to ``path`` (one item per line, header comments for metadata).

    Metadata is written as ``# meta key: repr(value)`` header lines, one per entry,
    which :func:`load_stream` parses back — so keys must not contain ``:`` or
    newlines and each value's ``repr`` must be a single line (a multiline repr
    would corrupt the line-oriented format).  Both are validated *before* the file
    is opened, so a bad entry never truncates an existing file at ``path``.

    Args:
        stream: the :class:`~repro.streams.stream.Stream` to persist (items,
            universe size, name, and metadata all travel).
        path: destination file; parent directories are created as needed.

    Raises:
        ValueError: if a metadata key contains ``:`` or a newline, or a metadata
            value's repr spans multiple lines.
    """
    meta_lines: List[str] = []
    for key, value in stream.metadata.items():
        if ":" in key or "\n" in key:
            raise ValueError(f"metadata key {key!r} cannot contain ':' or newlines")
        rendered = repr(value)
        if "\n" in rendered:
            raise ValueError(
                f"metadata value for {key!r} has a multiline repr and cannot be "
                "stored in the line-oriented stream format"
            )
        meta_lines.append(f"# meta {key}: {rendered}\n")
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# universe_size: {stream.universe_size}\n")
        handle.write(f"# name: {stream.name}\n")
        for line in meta_lines:
            handle.write(line)
        for item in stream.items:
            handle.write(f"{item}\n")


def _parse_meta_value(text: str) -> object:
    """Invert the ``{value!r}`` a ``# meta`` header line carries.

    Values are written as Python reprs, so literals (numbers, strings, tuples, dicts,
    booleans, ``None``) round-trip exactly through :func:`ast.literal_eval`; a repr
    that is not a literal (a custom object slipped into ``Stream.metadata``) degrades
    to the repr string itself rather than failing the whole load.
    """
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def load_stream(path: str, universe_size: Optional[int] = None) -> Stream:
    """Read a stream written by :func:`save_stream` (or any file of one item per line).

    Inverts the whole header: ``# universe_size`` and ``# name`` restore the
    stream's attributes, and every ``# meta key: value`` line is parsed back into
    :attr:`Stream.metadata` via :func:`ast.literal_eval` (non-literal reprs
    degrade to the repr string; see :func:`save_stream` for what round-trips
    exactly).  Blank lines and other ``#`` comments are ignored.

    Args:
        path: the stream file to read.
        universe_size: overrides the file header when given; it must be positive.
            Without it, the header value applies, falling back to ``max item + 1``.

    Returns:
        The materialized :class:`~repro.streams.stream.Stream`.

    Raises:
        ValueError: if ``universe_size`` is given but not positive, or any loaded
            item falls outside the resolved universe — a too-small caller-supplied
            (or corrupted-header) universe fails here, with the file named, not
            later inside the ingestion path's ``validate_universe``.
    """
    if universe_size is not None and universe_size <= 0:
        raise ValueError(f"universe_size must be positive, got {universe_size}")
    items: List[int] = []
    header_universe: Optional[int] = None
    name = os.path.basename(path)
    metadata: Dict[str, object] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# universe_size:"):
                    header_universe = int(line.split(":", 1)[1].strip())
                elif line.startswith("# name:"):
                    name = line.split(":", 1)[1].strip()
                elif line.startswith("# meta "):
                    key, separator, value = line[len("# meta "):].partition(":")
                    if separator:
                        metadata[key.strip()] = _parse_meta_value(value.strip())
                continue
            items.append(int(line))
    resolved_universe = universe_size if universe_size is not None else header_universe
    if resolved_universe is None:
        resolved_universe = (max(items) + 1) if items else 1
    if items:
        low, high = min(items), max(items)
        if low < 0 or high >= resolved_universe:
            offending = low if low < 0 else high
            raise ValueError(
                f"stream file {path!r} contains item {offending} outside the resolved "
                f"universe [0, {resolved_universe})"
            )
    return Stream(items=items, universe_size=resolved_universe, name=name, metadata=metadata)


def save_election(election: Election, path: str) -> None:
    """Write an election to ``path`` (one vote per line, candidates in preference order)."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# candidates: {election.num_candidates}\n")
        for vote in election.votes:
            handle.write(" ".join(str(candidate) for candidate in vote.order) + "\n")


def load_election(path: str) -> Election:
    """Read an election written by :func:`save_election`."""
    votes: List[Ranking] = []
    num_candidates: Optional[int] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# candidates:"):
                    num_candidates = int(line.split(":", 1)[1].strip())
                continue
            votes.append(Ranking([int(token) for token in line.split()]))
    if num_candidates is None:
        num_candidates = votes[0].num_candidates if votes else 1
    election = Election(num_candidates=num_candidates)
    election.extend(votes)
    return election


def iterate_stream_file(path: str) -> Iterable[int]:
    """Yield the items of a stream file one at a time without materializing it.

    This is the interface a truly single-pass consumer would use; the algorithms accept
    any iterable, so ``algo.consume(iterate_stream_file(path))`` processes an on-disk
    trace with O(1) extra memory beyond the algorithm's own state.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield int(line)


def iterate_stream_file_chunks(path: str, chunk_size: int = 1 << 16) -> Iterator[np.ndarray]:
    """Yield a stream file as contiguous int64 numpy batches (out-of-core replay).

    The chunked counterpart of :func:`iterate_stream_file`: each yielded array feeds
    ``insert_many`` (or a :class:`~repro.sharding.ShardRouter`) directly, so replaying
    an on-disk trace costs O(``chunk_size``) memory beyond the algorithm's own state
    while still ingesting through the batched fast path.  The concatenation of the
    yielded chunks is exactly the item sequence of the file — same comment/blank-line
    handling as the one-at-a-time iterator.

    Args:
        path: the stream file to replay.
        chunk_size: items per yielded chunk (every chunk except possibly the last
            has exactly this many); must be positive.

    Raises:
        ValueError: if ``chunk_size`` is not positive, or a non-comment line is not
            an integer.
    """
    yield from iter_chunks(iterate_stream_file(path), chunk_size)


def stream_file_metadata(path: str) -> Dict[str, int]:
    """One O(1)-memory pass over a stream file: length, max item and universe size.

    The universe size is the header's ``# universe_size`` when present — accepted
    anywhere in the file, like :func:`load_stream` — otherwise ``max item + 1``
    (matching :func:`load_stream`'s inference).  Exactly what a consumer needs to
    size its sketches before replaying the file out of core: unlike
    :func:`stream_file_statistics` (which retains a distinct-item set), nothing is
    accumulated here, so the pass stays bounded-memory on high-cardinality traces.

    Returns:
        A dict with ``length`` (item count), ``max_item`` (−1 for an empty file),
        and ``universe_size`` (header value, else ``max_item + 1``, else 1).
    """
    header_universe: Optional[int] = None
    length = 0
    max_item = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# universe_size:"):
                    header_universe = int(line.split(":", 1)[1].strip())
                continue
            item = int(line)
            length += 1
            if item > max_item:
                max_item = item
    inferred = max_item + 1 if length else 1
    return {
        "length": length,
        "max_item": max_item,
        "universe_size": header_universe if header_universe is not None else inferred,
    }


def stream_file_statistics(path: str) -> Dict[str, int]:
    """Cheap one-pass statistics of a stream file (length, max id, distinct count)."""
    length = 0
    max_item = -1
    distinct: set = set()
    for item in iterate_stream_file(path):
        length += 1
        if item > max_item:
            max_item = item
        distinct.add(item)
    return {"length": length, "max_item": max_item, "distinct_items": len(distinct)}
