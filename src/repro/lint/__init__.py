"""``repro lint`` — AST-based invariant checking for the reproduction.

A pluggable static-analysis framework (:mod:`repro.lint.engine`) plus six
repo-specific rules (:mod:`repro.lint.rules`) that machine-check the invariants
the test suite cannot fully police: RNG discipline, lock discipline in the
threaded layers, determinism of report/merge/serialization paths, hot-path
hygiene, protocol-surface consistency, and thread resource safety.

CLI: ``repro lint [paths] [--rule RULE] [--json] [--list-rules]`` — see
docs/STATIC_ANALYSIS.md for the rule catalog and the pragma syntax
(``# repro: lint-ignore[rule-id] -- reason``).
"""

from repro.lint.engine import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    LINT_SCHEMA_VERSION,
    Finding,
    LintResult,
    ProjectRule,
    Rule,
    SourceFile,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.rules import all_rules

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "LINT_SCHEMA_VERSION",
    "Finding",
    "LintResult",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "all_rules",
    "render_json",
    "render_text",
    "run_lint",
]
