"""The ``repro lint`` engine: AST-walking rules, findings, and pragma suppression.

The repo's correctness story rests on invariants no unit test can fully police —
every source of randomness flowing through :class:`~repro.primitives.rng.RandomSource`
(the served==offline bit-for-bit guarantee), consistent lock discipline in the
threaded layers, determinism of report/merge/serialization paths, and the
allocation-free hot paths PR 5 engineered.  This module machine-checks them:

* a :class:`Rule` inspects one parsed :class:`SourceFile` and yields
  :class:`Finding`\\ s (``file:line``, rule id, message, fix hint);
* a :class:`ProjectRule` sees *all* files at once (cross-file surface checks);
* ``# repro: lint-ignore[rule-id] -- reason`` on (or immediately above) a line
  suppresses matching findings — the reason is mandatory, a pragma without one
  is itself reported (``bad-pragma``, never suppressible);
* :func:`run_lint` walks paths, applies rules, resolves suppressions, and
  returns a :class:`LintResult`; :func:`render_text` / :func:`render_json`
  produce the two output formats.

Exit-code contract (used by the CLI and CI): 0 = clean, 1 = findings,
2 = usage error (unknown rule, missing path).  See docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Version tag carried in the JSON output so CI consumers can detect format changes.
LINT_SCHEMA_VERSION = 1

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class Suppression:
    """One parsed ``lint-ignore`` pragma."""

    line: int
    rules: Tuple[str, ...]  # ("*",) for a bare lint-ignore[*]
    reason: str
    file_wide: bool

    def matches(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


#: ``# repro: lint-ignore[rule-a, rule-b] -- reason`` (or ``lint-ignore-file``).
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-ignore(?P<file>-file)?\s*"
    r"\[(?P<rules>[^\]]*)\]\s*"
    r"(?:--\s*(?P<reason>\S.*))?$"
)
#: Anything that *looks* like an attempted pragma, for bad-pragma reporting.
_PRAGMA_ATTEMPT_RE = re.compile(r"#\s*repro:\s*lint-ignore")


class SourceFile:
    """One parsed Python file plus the context rules need.

    ``rel`` is the path rules scope on: the part after ``src/repro/`` when the
    file lives inside the package (so ``pipeline/executor.py`` reads the same
    from any checkout location), otherwise the path relative to the lint root
    (which is what makes fixture trees in tests behave like package paths).
    """

    def __init__(self, path: Path, root: Path, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.rel = self._relative_name(path, root)
        self.suppressions: List[Suppression] = []
        self.bad_pragmas: List[Finding] = []
        self._parse_pragmas()

    @staticmethod
    def _relative_name(path: Path, root: Path) -> str:
        parts = path.as_posix().split("/")
        for anchor in range(len(parts) - 1, 0, -1):
            if parts[anchor - 1] == "repro" and anchor >= 2 and parts[anchor - 2] == "src":
                return "/".join(parts[anchor:])
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            return path.name

    def _parse_pragmas(self) -> None:
        for index, line in enumerate(self.lines, start=1):
            if not _PRAGMA_ATTEMPT_RE.search(line):
                continue
            match = _PRAGMA_RE.search(line.rstrip())
            if match is None:
                self.bad_pragmas.append(Finding(
                    rule="bad-pragma", path=str(self.path), line=index,
                    message="malformed lint-ignore pragma",
                    hint="write `# repro: lint-ignore[rule-id] -- reason`",
                ))
                continue
            rules = tuple(
                name.strip() for name in match.group("rules").split(",") if name.strip()
            )
            reason = (match.group("reason") or "").strip()
            if not rules:
                self.bad_pragmas.append(Finding(
                    rule="bad-pragma", path=str(self.path), line=index,
                    message="lint-ignore pragma names no rule",
                    hint="list the rule ids to suppress, e.g. lint-ignore[rng-discipline]",
                ))
                continue
            if not reason:
                self.bad_pragmas.append(Finding(
                    rule="bad-pragma", path=str(self.path), line=index,
                    message="lint-ignore pragma without a written reason",
                    hint="append ` -- why this violation is intentional`",
                ))
                continue
            self.suppressions.append(Suppression(
                line=index, rules=rules, reason=reason,
                file_wide=match.group("file") is not None,
            ))

    def is_suppressed(self, finding: Finding) -> bool:
        """A finding is suppressed by a pragma on its line, the pragma-only line
        directly above it, or a file-wide pragma anywhere in the file."""
        for suppression in self.suppressions:
            if not suppression.matches(finding.rule):
                continue
            if suppression.file_wide:
                return True
            if suppression.line == finding.line:
                return True
            if (
                suppression.line == finding.line - 1
                and self.lines[suppression.line - 1].lstrip().startswith("#")
            ):
                return True
        return False


class Rule:
    """Base class for single-file rules; subclasses set ``rule_id`` and ``check``."""

    rule_id: str = ""
    description: str = ""

    def check(self, source: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST, message: str, hint: str = "") -> Finding:
        return Finding(
            rule=self.rule_id, path=str(source.path),
            line=getattr(node, "lineno", 1), message=message, hint=hint,
        )


class ProjectRule(Rule):
    """A rule that sees every linted file at once (cross-file consistency)."""

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, sources: Sequence[SourceFile], root: Path) -> Iterable[Finding]:
        raise NotImplementedError


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    rules: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN


def iter_python_files(paths: Sequence[Path]) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, root)`` for every ``.py`` under the given paths, sorted."""
    for path in paths:
        if path.is_file():
            yield path, path.parent
        elif path.is_dir():
            for file in sorted(path.rglob("*.py")):
                yield file, path
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")


def run_lint(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    *,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with the given rules.

    Args:
        paths: files or directories to walk.
        rules: rule instances to apply (see :mod:`repro.lint.rules`).
        rule_ids: optional subset of rule ids to activate; unknown ids raise
            ``ValueError`` (the CLI turns that into exit code 2).

    Returns:
        A :class:`LintResult`; ``findings`` are sorted by (path, line, rule)
        and already exclude pragma-suppressed ones (counted in ``suppressed``).
        Unparseable files surface as ``parse-error`` findings rather than
        crashing the run.
    """
    if rule_ids is not None:
        known = {rule.rule_id for rule in rules}
        unknown = [rule_id for rule_id in rule_ids if rule_id not in known]
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.rule_id in rule_ids]

    sources: List[SourceFile] = []
    findings: List[Finding] = []
    files_checked = 0
    roots: Dict[str, Path] = {}
    seen: Set[Path] = set()
    for file, root in iter_python_files(paths):
        resolved = file.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        files_checked += 1
        text = file.read_text(encoding="utf-8")
        try:
            source = SourceFile(file, root, text)
        except SyntaxError as exc:
            findings.append(Finding(
                rule="parse-error", path=str(file), line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        sources.append(source)
        roots[str(file)] = root

    raw: List[Tuple[SourceFile, Finding]] = []
    for source in sources:
        for rule in rules:
            for finding in rule.check(source):
                raw.append((source, finding))
    by_path = {str(source.path): source for source in sources}
    project_root = paths[0] if paths else Path(".")
    for rule in rules:
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(sources, project_root):
                owner = by_path.get(finding.path)
                if owner is not None:
                    raw.append((owner, finding))
                else:
                    findings.append(finding)

    suppressed = 0
    for source, finding in raw:
        if source.is_suppressed(finding):
            suppressed += 1
        else:
            findings.append(finding)
    for source in sources:
        findings.extend(source.bad_pragmas)  # never suppressible

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintResult(
        findings=findings,
        files_checked=files_checked,
        suppressed=suppressed,
        rules=[rule.rule_id for rule in rules],
    )


def render_text(result: LintResult) -> str:
    """Human-readable report: one block per finding plus a summary line."""
    blocks = [finding.render() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s) "
        f"({result.suppressed} suppressed by pragma; "
        f"rules: {', '.join(result.rules)})"
    )
    return "\n".join(blocks + [summary])


def render_json(result: LintResult) -> str:
    """Machine-readable report (the CI consumer's format)."""
    return json.dumps(
        {
            "lint_schema": LINT_SCHEMA_VERSION,
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "rules": result.rules,
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.line,
                    "message": finding.message,
                    "hint": finding.hint,
                }
                for finding in result.findings
            ],
        },
        indent=2,
        sort_keys=True,
    )
