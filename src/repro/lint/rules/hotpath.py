"""hot-path: the batch-ingest and frame-codec kernels stay loop-free and copy-free.

The 37–54M items/s served ingest rate (PR 5) exists because the hot functions —
every sketch's ``insert_many``, the executors' ``ingest_chunk``, and the frame
codec (``encode_items`` / ``decode_items`` / ``send_frame`` / ``recv_frame`` /
``_recv_exact`` / ``_send_vectored`` / ``rechunk_arrays``) — never fall back to
per-item Python loops or allocation-heavy idioms.  This rule flags the three
regressions PR 5 explicitly engineered out:

* a Python ``for`` loop directly over an array parameter (per-item work where a
  vectorized kernel is expected);
* ``np.concatenate`` on per-batch data (an O(batch) copy per call — the
  ring-buffer re-chunker exists to avoid exactly this);
* bytes-copying idioms: ``b"".join(...)`` and ``bytes(memoryview(...))`` (the
  ``recv_into``/``sendmsg`` framing exists to avoid the glue copy).

A loop that is genuinely per-*distinct*-item (e.g. over ``np.unique`` output)
iterates a derived local, not the parameter, and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.engine import Finding, Rule, SourceFile
from repro.lint.rules.base import (
    canonical_name,
    function_param_names,
    import_aliases,
    walk_functions,
)

#: Batch-ingest entry points (any module) …
_INGEST_FUNCTIONS = {"insert_many", "ingest_chunk"}
#: … and the zero-copy frame/re-chunk kernels.
_CODEC_FUNCTIONS = {
    "encode_items", "decode_items", "send_frame", "recv_frame",
    "_recv_exact", "_send_vectored", "rechunk_arrays",
}
_HOT_FUNCTIONS = _INGEST_FUNCTIONS | _CODEC_FUNCTIONS


class HotPathRule(Rule):
    rule_id = "hot-path"
    description = (
        "flag per-item loops over array parameters, np.concatenate, and "
        "bytes-copying idioms inside insert_many/ingest_chunk/frame-codec functions"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        aliases = import_aliases(source.tree)
        findings: List[Finding] = []
        for function, _owner in walk_functions(source.tree):
            if function.name not in _HOT_FUNCTIONS:
                continue
            params = set(function_param_names(function))
            for node in ast.walk(function):
                if isinstance(node, ast.For):
                    findings.extend(self._check_loop(source, function, node, params))
                elif isinstance(node, ast.Call):
                    findings.extend(self._check_call(source, function, node, aliases))
        return findings

    def _check_loop(
        self, source: SourceFile, function, node: ast.For, params
    ) -> Iterable[Finding]:
        iterable = node.iter
        # `for x in items:` — also catch `enumerate(items)` / `zip(items, …)`
        # over the raw parameter, which is the same per-item loop in disguise.
        candidates = [iterable]
        if isinstance(iterable, ast.Call) and isinstance(iterable.func, ast.Name):
            if iterable.func.id in ("enumerate", "zip", "iter", "reversed"):
                candidates.extend(iterable.args)
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in params:
                yield self.finding(
                    source, node,
                    f"per-item Python loop over parameter `{candidate.id}` in "
                    f"hot function `{function.name}`",
                    "vectorize (np.unique / hash_many / binomial batch updates) or "
                    "aggregate first; per-item loops undo the batched fast path",
                )
                return

    def _check_call(
        self, source: SourceFile, function, node: ast.Call, aliases
    ) -> Iterable[Finding]:
        name = canonical_name(node.func, aliases)
        if name == "numpy.concatenate":
            yield self.finding(
                source, node,
                f"`np.concatenate` on per-batch data in hot function `{function.name}`",
                "stage fragments into a preallocated ring buffer "
                "(see primitives.batching.rechunk_arrays) instead of concatenating",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, bytes)
        ):
            yield self.finding(
                source, node,
                f"`b\"\".join(...)` glue copy in hot function `{function.name}`",
                "receive with socket.recv_into over one preallocated buffer / send "
                "with vectored sendmsg instead of concatenating byte pieces",
            )
            return
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "bytes"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and canonical_name(node.args[0].func, aliases) == "memoryview"
        ):
            yield self.finding(
                source, node,
                f"`bytes(memoryview(...))` copy in hot function `{function.name}`",
                "pass the memoryview itself; the frame layer sends views uncopied",
            )
