"""The rule registry for ``repro lint``.

Adding a rule is three steps (see docs/STATIC_ANALYSIS.md):

1. subclass :class:`repro.lint.engine.Rule` (or :class:`ProjectRule` for
   cross-file checks) in a new module here, grounding the rule in a documented
   repo invariant;
2. register an instance in :data:`ALL_RULES`;
3. add positive / negative / pragma-suppressed fixtures to
   ``tests/unit/test_lint.py``.
"""

from __future__ import annotations

from typing import List

from repro.lint.engine import Rule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.durability import DurabilityDisciplineRule
from repro.lint.rules.hotpath import HotPathRule
from repro.lint.rules.locks import LockDisciplineRule
from repro.lint.rules.protocol_surface import ProtocolSurfaceRule
from repro.lint.rules.resources import ResourceSafetyRule
from repro.lint.rules.rng import RngDisciplineRule


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in stable id order."""
    rules: List[Rule] = [
        DeterminismRule(),
        DurabilityDisciplineRule(),
        HotPathRule(),
        LockDisciplineRule(),
        ProtocolSurfaceRule(),
        ResourceSafetyRule(),
        RngDisciplineRule(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)


__all__ = [
    "DeterminismRule",
    "DurabilityDisciplineRule",
    "HotPathRule",
    "LockDisciplineRule",
    "ProtocolSurfaceRule",
    "ResourceSafetyRule",
    "RngDisciplineRule",
    "all_rules",
]
