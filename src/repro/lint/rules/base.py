"""Shared AST helpers for the repro lint rules.

Rules resolve names against each file's import aliases so ``np.random`` and
``numpy.random`` (or ``from time import time``) read as the same canonical
dotted path, and they walk function/class bodies with enough context (enclosing
class, enclosing function, lock state) to state findings precisely.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted module/attribute they import.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import time`` → ``{"time": "time.time"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def canonical_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The dotted name with its leading segment resolved through the imports.

    ``np.random.default_rng`` → ``numpy.random.default_rng``; a bare name
    imported via ``from x import y`` resolves to ``x.y``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def walk_functions(tree: ast.Module) -> Iterator[Tuple[FunctionNode, Optional[ast.ClassDef]]]:
    """Yield every function with its enclosing class (``None`` at module level)."""

    def visit(node: ast.AST, owner: Optional[ast.ClassDef]) -> Iterator[
        Tuple[FunctionNode, Optional[ast.ClassDef]]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                yield from visit(child, owner)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, owner)

    yield from visit(tree, None)


def function_param_names(function: FunctionNode) -> List[str]:
    """Positional/keyword parameter names, excluding ``self``/``cls``."""
    args = function.args
    names = [arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    return [name for name in names if name not in ("self", "cls")]


def self_attribute(node: ast.AST) -> Optional[str]:
    """``attr`` when the node is exactly ``self.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def assignment_targets(node: ast.AST) -> Iterator[ast.expr]:
    """The target expressions of any assignment statement node, flattened."""
    if isinstance(node, ast.Assign):
        targets: List[ast.expr] = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    stack = targets
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Starred):
            stack.append(target.value)
        else:
            yield target
