"""protocol-surface: the command set and metric names stay consistent everywhere.

The frame protocol's command surface is declared four times — the server's
``_KNOWN_COMMANDS`` label set, the ``_dispatch_inner`` if-chain,
:class:`~repro.service.client.ServiceClient`'s methods, and the prose docs —
and PRs 5–7 showed how easily they drift as the command set grows.  This
project-wide rule cross-checks all four: every dispatched command must be in
``_KNOWN_COMMANDS`` (and vice versa), have a same-named ``ServiceClient``
method, and appear in the docs (README.md / docs/*.md next to the source
tree).  The named-stream lifecycle adds a fifth declaration site: the
registry's ``_LIFECYCLE_COMMANDS`` set (``service/registry.py``) names the
``stream_*`` wire commands, and this rule ties it to the other four — every
declared lifecycle command must be dispatched by the server (which transitively
demands the label-set entry, the client method, and the docs mention), and
every dispatched ``stream_*`` command must be declared in the registry, so the
two layers cannot drift apart silently.  It also enforces the exposition
layer's naming contract: every metric
registered through the registry (``counter`` / ``gauge`` / ``histogram``)
carries the ``repro_`` prefix, so dashboards and the CI scrape can rely on one
namespace.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.engine import Finding, ProjectRule, SourceFile

_REGISTRY_METHODS = {"counter", "gauge", "histogram"}
_METRIC_PREFIX = "repro_"

#: Commands implemented by a differently-named client method (none today; the
#: mapping exists so a rename needs one entry here, not a rule rewrite).
_CLIENT_METHOD_FOR = {}


def _string_set(node: ast.AST) -> Optional[Set[str]]:
    """The string elements of a set/frozenset literal, or ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "frozenset" and node.args:
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = set()
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            values.add(element.value)
        return values
    return None


class ProtocolSurfaceRule(ProjectRule):
    rule_id = "protocol-surface"
    description = (
        "server dispatch table, _KNOWN_COMMANDS, the registry's stream "
        "_LIFECYCLE_COMMANDS, ServiceClient methods, and docs must agree; "
        "metric names must carry the repro_ prefix"
    )

    # -- per-file: metric naming ---------------------------------------------------

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _REGISTRY_METHODS or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                name = first.value
                looks_like_metric = re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name)
                if looks_like_metric and not name.startswith(_METRIC_PREFIX):
                    findings.append(self.finding(
                        source, node,
                        f"metric `{name}` lacks the `{_METRIC_PREFIX}` prefix",
                        "every instrument shares the repro_ namespace so the "
                        "Prometheus exposition and CI scrape can rely on it",
                    ))
        return findings

    # -- project-wide: command surface ---------------------------------------------

    def check_project(self, sources: Sequence[SourceFile], root: Path) -> Iterable[Finding]:
        server = self._find(sources, "service/server.py")
        client = self._find(sources, "service/client.py")
        if server is None:
            return []
        findings: List[Finding] = []
        known, known_line = self._known_commands(server)
        dispatched: Dict[str, int] = self._dispatched_commands(server)
        if known is not None:
            for command in sorted(set(dispatched) - known):
                findings.append(Finding(
                    rule=self.rule_id, path=str(server.path), line=dispatched[command],
                    message=(
                        f"command `{command}` is dispatched but missing from "
                        "_KNOWN_COMMANDS (its metrics will record as \"invalid\")"
                    ),
                    hint="add it to the _KNOWN_COMMANDS label set",
                ))
            for command in sorted(known - set(dispatched)):
                findings.append(Finding(
                    rule=self.rule_id, path=str(server.path), line=known_line,
                    message=(
                        f"command `{command}` is in _KNOWN_COMMANDS but never "
                        "dispatched"
                    ),
                    hint="remove the stale entry or wire the handler",
                ))
        if client is not None:
            methods = self._client_methods(client)
            for command, line in sorted(dispatched.items()):
                wanted = _CLIENT_METHOD_FOR.get(command, command)
                if wanted not in methods:
                    findings.append(Finding(
                        rule=self.rule_id, path=str(server.path), line=line,
                        message=(
                            f"server command `{command}` has no matching "
                            f"ServiceClient.{wanted}() method"
                        ),
                        hint="every wire command needs a first-class client method",
                    ))
        registry = self._find(sources, "service/registry.py")
        if registry is not None:
            lifecycle, lifecycle_line = self._lifecycle_commands(registry)
            if lifecycle is not None:
                for command in sorted(lifecycle - set(dispatched)):
                    findings.append(Finding(
                        rule=self.rule_id, path=str(registry.path),
                        line=lifecycle_line,
                        message=(
                            f"stream command `{command}` is declared in the "
                            "registry's _LIFECYCLE_COMMANDS but never "
                            "dispatched by the server"
                        ),
                        hint=(
                            "wire a handler branch in the server's dispatch "
                            "(the client-method and docs checks then follow)"
                        ),
                    ))
                stream_dispatched = {
                    command for command in dispatched
                    if command.startswith("stream_")
                }
                for command in sorted(stream_dispatched - lifecycle):
                    findings.append(Finding(
                        rule=self.rule_id, path=str(server.path),
                        line=dispatched[command],
                        message=(
                            f"stream command `{command}` is dispatched but "
                            "missing from the registry's _LIFECYCLE_COMMANDS"
                        ),
                        hint=(
                            "declare it in service/registry.py so the "
                            "lifecycle surface stays in one place"
                        ),
                    ))
        doc_text = self._docs_text(server.path)
        if doc_text is not None:
            for command, line in sorted(dispatched.items()):
                if re.search(rf"\b{re.escape(command)}\b", doc_text) is None:
                    findings.append(Finding(
                        rule=self.rule_id, path=str(server.path), line=line,
                        message=f"server command `{command}` is undocumented",
                        hint="mention it in README.md or docs/ (rule scans both)",
                    ))
        return findings

    @staticmethod
    def _find(sources: Sequence[SourceFile], rel: str) -> Optional[SourceFile]:
        for source in sources:
            if source.rel == rel:
                return source
        return None

    @staticmethod
    def _known_commands(server: SourceFile):
        for node in ast.walk(server.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = getattr(target, "id", getattr(target, "attr", None))
                    if name == "_KNOWN_COMMANDS":
                        return _string_set(node.value), node.lineno
        return None, 1

    @staticmethod
    def _lifecycle_commands(registry: SourceFile):
        """The registry's ``_LIFECYCLE_COMMANDS`` literal set, or ``None``."""
        for node in ast.walk(registry.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = getattr(target, "id", getattr(target, "attr", None))
                    if name == "_LIFECYCLE_COMMANDS":
                        return _string_set(node.value), node.lineno
        return None, 1

    @staticmethod
    def _dispatched_commands(server: SourceFile) -> Dict[str, int]:
        """Constants compared against the command in the dispatch function."""
        commands: Dict[str, int] = {}
        for node in ast.walk(server.tree):
            if not (isinstance(node, ast.FunctionDef) and "dispatch" in node.name):
                continue
            for compare in ast.walk(node):
                if not isinstance(compare, ast.Compare):
                    continue
                for side in [compare.left] + list(compare.comparators):
                    if isinstance(side, ast.Constant) and isinstance(side.value, str):
                        commands.setdefault(side.value, compare.lineno)
        return commands

    @staticmethod
    def _client_methods(client: SourceFile) -> Set[str]:
        for node in ast.walk(client.tree):
            if isinstance(node, ast.ClassDef) and node.name == "ServiceClient":
                return {
                    item.name for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
        return set()

    @staticmethod
    def _docs_text(server_path: Path) -> Optional[str]:
        """README.md + docs/*.md found by walking up from the server module.

        Returns ``None`` (doc check skipped) when no docs exist — fixture trees
        in tests opt in by creating a ``docs/`` directory or README.md.
        """
        directory = server_path.resolve().parent
        for _ in range(6):
            readme = directory / "README.md"
            docs_dir = directory / "docs"
            if readme.exists() or docs_dir.is_dir():
                chunks: List[str] = []
                if readme.exists():
                    chunks.append(readme.read_text(encoding="utf-8"))
                if docs_dir.is_dir():
                    for doc in sorted(docs_dir.glob("*.md")):
                        chunks.append(doc.read_text(encoding="utf-8"))
                return "\n".join(chunks)
            if directory.parent == directory:
                break
            directory = directory.parent
        return None
