"""rng-discipline: every source of randomness must flow through RandomSource.

The served==offline ``identical_report`` guarantee (and the re-seed-on-serialize
checkpoint contract from PR 4/6) holds only because every random draw in
``src/repro/`` comes from a seeded :class:`~repro.primitives.rng.RandomSource`
hierarchy.  One stray ``import random``, ``np.random.*`` draw, or wall-clock
seed silently breaks bit-for-bit reproducibility everywhere downstream, in a
way no equality test can localize.  Only ``primitives/rng.py`` — the choke
point itself — may touch the underlying generators.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.engine import Finding, Rule, SourceFile
from repro.lint.rules.base import canonical_name, import_aliases

#: The one module allowed to touch the raw generators.
_ALLOWED = ("primitives/rng.py",)

#: Wall-clock calls that must never feed a seed.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
}

_HINT = (
    "draw from a RandomSource (repro.primitives.rng) passed in by the caller; "
    "module-global or wall-clock randomness breaks the served==offline "
    "bit-for-bit contract"
)


class RngDisciplineRule(Rule):
    rule_id = "rng-discipline"
    description = (
        "flag `import random`, `np.random.*`, and wall-clock-derived seeds "
        "outside primitives/rng.py"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        if source.rel in _ALLOWED:
            return []
        aliases = import_aliases(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("numpy.random"):
                        findings.append(self.finding(
                            source, node,
                            f"direct import of `{alias.name}` outside primitives/rng.py",
                            _HINT,
                        ))
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("random", "numpy.random"):
                    findings.append(self.finding(
                        source, node,
                        f"direct import from `{node.module}` outside primitives/rng.py",
                        _HINT,
                    ))
            elif isinstance(node, ast.Attribute):
                name = canonical_name(node, aliases)
                if name is not None and (
                    name == "numpy.random" or name.startswith("numpy.random.")
                ):
                    findings.append(self.finding(
                        source, node,
                        f"`{name}` draws from numpy's global/ad-hoc RNG state",
                        "use RandomSource.numpy_generator() so the draw is seeded "
                        "from the deterministic hierarchy",
                    ))
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.keyword)):
                findings.extend(self._wall_clock_seed(source, node, aliases))
        return findings

    def _wall_clock_seed(self, source: SourceFile, node: ast.AST, aliases) -> Iterable[Finding]:
        """A wall-clock call assigned to a `seed`-named target or keyword."""
        if isinstance(node, ast.keyword):
            seedish = node.arg is not None and "seed" in node.arg.lower()
            value = node.value
        else:
            names = []
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
                elif isinstance(target, ast.Attribute):
                    names.append(target.attr)
            seedish = any("seed" in name.lower() for name in names)
            value = node.value
        if not seedish or value is None:
            return []
        for call in ast.walk(value):
            if isinstance(call, ast.Call):
                name = canonical_name(call.func, aliases)
                if name in _WALL_CLOCK:
                    return [self.finding(
                        source, call,
                        f"seed derived from wall clock (`{name}()`)",
                        "seeds must be explicit (CLI flag, config, or spawned from "
                        "a parent RandomSource) so runs are reproducible",
                    )]
        return []
