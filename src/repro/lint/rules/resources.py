"""resource-safety: every thread created is joined, daemonized, or owned by a shutdown.

The pipeline producer, the service accept/run loops, and the metrics sidecar
all follow the same discipline (established in PR 3's join-on-every-exit-path
producer): a ``threading.Thread`` is either

* created ``daemon=True`` (explicitly fire-and-forget — process exit reaps it),
* a local joined in the same function on every exit path, or
* stored on ``self`` with a paired method in the same class that joins it
  (``close`` / ``stop`` / ``shutdown`` / ``join`` — any method calling
  ``.join()`` counts).

A thread that is none of these leaks on error paths: tests hang at interpreter
exit, servers never release their sockets, and the failure reproduces only
under load.  This rule flags such creations.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.engine import Finding, Rule, SourceFile
from repro.lint.rules.base import canonical_name, import_aliases, self_attribute, walk_functions

_HINT = (
    "join the thread on every exit path, pass daemon=True if it is deliberately "
    "fire-and-forget, or store it on self with a shutdown method that joins it"
)


def _is_daemon_call(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "daemon" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


class ResourceSafetyRule(Rule):
    rule_id = "resource-safety"
    description = (
        "flag threading.Thread creations that are neither daemonized, joined in "
        "the same function, nor joined by a paired method of the same class"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        aliases = import_aliases(source.tree)
        _annotate_bindings(source.tree)
        findings: List[Finding] = []
        class_joins = self._class_joined_attributes(source)
        for function, owner in walk_functions(source.tree):
            local_joins = self._local_joined_names(function)
            daemon_sets = self._daemon_assignments(function)
            for statement in ast.walk(function):
                call = self._thread_call(statement, aliases)
                if call is None or _is_daemon_call(call):
                    continue
                binding = self._binding(statement, call)
                if binding is None:
                    findings.append(self.finding(
                        source, call,
                        "thread created without a binding: it can never be joined",
                        _HINT,
                    ))
                    continue
                kind, name = binding
                if kind == "local" and (name in local_joins or name in daemon_sets):
                    continue
                if kind == "self":
                    owner_name = owner.name if owner is not None else None
                    if owner_name is not None and name in class_joins.get(owner_name, set()):
                        continue
                where = f"self.{name}" if kind == "self" else f"`{name}`"
                scope = (
                    "no method of the class joins it"
                    if kind == "self" else "it is never joined in this function"
                )
                findings.append(self.finding(
                    source, call,
                    f"thread stored in {where} but {scope}",
                    _HINT,
                ))
        return findings

    @staticmethod
    def _thread_call(statement: ast.AST, aliases) -> Optional[ast.Call]:
        if not isinstance(statement, ast.Call):
            return None
        name = canonical_name(statement.func, aliases)
        return statement if name == "threading.Thread" else None

    @staticmethod
    def _binding(statement: ast.AST, call: ast.Call):
        """How the Thread(...) value is bound: ('local', name) / ('self', attr) / None.

        Walks up is not possible without parent links, so instead the rule
        re-scans assignments whose value (or value's chain head, for
        ``Thread(...).start()``) is this call.
        """
        # The statement *is* the call here; bindings are found by the caller's
        # enclosing-assign scan below.
        return getattr(call, "_repro_binding", None)

    def _local_joined_names(self, function) -> Set[str]:
        joined: Set[str] = set()
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and isinstance(node.func.value, ast.Name)
            ):
                joined.add(node.func.value.id)
        return joined

    def _daemon_assignments(self, function) -> Set[str]:
        """Names whose `.daemon` is assigned True in this function."""
        names: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "daemon"
                        and isinstance(target.value, ast.Name)
                        and isinstance(node.value, ast.Constant)
                        and node.value.value
                    ):
                        names.add(target.value.id)
        return names

    def _class_joined_attributes(self, source: SourceFile):
        """Per class name: the set of self._x attributes some method joins."""
        joins = {}
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: Set[str] = set()
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "join"
                ):
                    attr = self_attribute(inner.func.value)
                    if attr is not None:
                        attrs.add(attr)
            joins[node.name] = attrs
        return joins


def _annotate_bindings(tree: ast.Module) -> None:
    """Tag Thread(...) calls with how their value is bound (pre-pass).

    ``x = threading.Thread(...)`` tags the call ``('local', 'x')``;
    ``self._t = threading.Thread(...)`` tags ``('self', '_t')``;
    ``threading.Thread(...).start()`` and bare expression calls stay untagged
    (reported as unbound unless daemonized).
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            for target in node.targets:
                if isinstance(target, ast.Name):
                    call._repro_binding = ("local", target.id)  # type: ignore[attr-defined]
                else:
                    attr = self_attribute(target)
                    if attr is not None:
                        call._repro_binding = ("self", attr)  # type: ignore[attr-defined]
