"""durability-discipline: atomic replace means fsync the file AND its directory.

The durability layers (:mod:`repro.service.checkpoint`,
:mod:`repro.durability.wal`) promise that anything acknowledged survives a
crash.  That promise rests on the full write-then-rename liturgy, established
in ``Checkpointer.save`` and documented in docs/DURABILITY.md:

1. write the new content to a temp sibling and ``os.fsync`` the **file** —
   rename alone only guarantees readers see old-or-new; without the data
   flush, a power loss can surface the *new* name holding zeroes;
2. ``os.replace``/``os.rename`` into place;
3. fsync the **directory** (``Checkpointer._fsync_directory``) — the new
   directory entry lives in the page cache until the directory inode is
   flushed, so a crash right after "ok" could roll the file back.

Skipping either fsync is invisible in every test (the page cache serves reads
coherently) and only bites on real power loss — exactly the kind of invariant
only a machine check keeps honest.  This rule flags any function in the
durability-critical modules (``service/``, ``durability/``) that renames a
file into place without both flushes in the same function.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.engine import Finding, Rule, SourceFile
from repro.lint.rules.base import canonical_name, import_aliases, walk_functions

#: Modules whose writes carry a durability promise.
_SCOPED_PREFIXES = ("service/", "durability/")

#: Callee-name fragments that count as fsyncing the containing directory.
_DIRECTORY_FSYNC_FRAGMENT = "fsync_directory"

_HINT = (
    "follow Checkpointer.save's liturgy: os.fsync(fd) the written file before "
    "the rename, then fsync the directory (Checkpointer._fsync_directory) "
    "after it, all in the same function"
)


def _callee_tail(call: ast.Call) -> str:
    """The last attribute/name segment of the call target (e.g. ``_fsync_directory``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class DurabilityDisciplineRule(Rule):
    rule_id = "durability-discipline"
    description = (
        "flag os.replace/os.rename in the durability-critical modules without "
        "both an os.fsync of the written file and a directory fsync in the "
        "same function"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        if not source.rel.startswith(_SCOPED_PREFIXES):
            return []
        aliases = import_aliases(source.tree)
        findings: List[Finding] = []
        for function, _owner in walk_functions(source.tree):
            renames: List[ast.Call] = []
            file_fsync = False
            directory_fsync = False
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                name = canonical_name(node.func, aliases)
                if name in ("os.replace", "os.rename"):
                    renames.append(node)
                elif name == "os.fsync":
                    file_fsync = True
                if _DIRECTORY_FSYNC_FRAGMENT in _callee_tail(node):
                    directory_fsync = True
            if not renames:
                continue
            # The directory-fsync helper itself calls os.fsync on a directory
            # fd; a function delegating to it has flushed the *entry*, not the
            # file contents, so both checks stay independent.
            for call in renames:
                if not file_fsync:
                    findings.append(self.finding(
                        source, call,
                        "file renamed into place but never os.fsync-ed: a "
                        "crash can surface the new name holding zeroes",
                        _HINT,
                    ))
                if not directory_fsync:
                    findings.append(self.finding(
                        source, call,
                        "rename without fsyncing the containing directory: a "
                        "crash can roll the entry back after the ack",
                        _HINT,
                    ))
        return findings
