"""determinism: report/merge/serialization paths must not depend on hash order or clocks.

Two checks guard the bit-for-bit equality flags (`identical_report`) every
benchmark asserts:

* **unordered iteration** — iterating a ``set`` (literal, ``set(...)`` call, or
  set-typed expression) or ``dict.keys()`` without ``sorted(...)`` inside a
  function on a report/merge/serialization path makes the output depend on hash
  seeding and insertion history.  Two runs (or two replicas) that hold the same
  *logical* state can then serialize differently, so equality checks and quorum
  merges break without any numeric bug.
* **wall clocks in sketch/pipeline modules** — ``time.time()`` and friends in
  ``core/``, ``baselines/``, ``primitives/``, ``pipeline/``, ``sharding/`` make
  state or output time-dependent.  Monotonic timing (``perf_counter`` /
  ``monotonic``) is fine — it never feeds state; observability modules are
  allowlisted (timestamps are their job).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.lint.engine import Finding, Rule, SourceFile
from repro.lint.rules.base import canonical_name, import_aliases, walk_functions

#: Function names on report/merge/serialization paths.
_ORDER_SENSITIVE = re.compile(
    r"(report|merge|serial|getstate|to_json|to_payload|payload|render|"
    r"save|snapshot|checkpoint|sink_state)",
    re.IGNORECASE,
)

#: Modules where any wall-clock read is suspect (sketch + ingest layers).
_CLOCK_SCOPES = ("core/", "baselines/", "primitives/", "pipeline/", "sharding/")

_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.ctime": "time.ctime()",
    "time.localtime": "time.localtime()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


def _is_sorted_wrapped(node: ast.AST, parents: dict) -> bool:
    """True when the iterable is directly inside sorted(...)/min/max/sum."""
    parent = parents.get(id(node))
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in ("sorted", "min", "max", "sum", "len", "frozenset", "set")
    )


class DeterminismRule(Rule):
    rule_id = "determinism"
    description = (
        "flag unsorted set/dict.keys() iteration in report/merge/serialization "
        "functions and wall-clock reads in sketch/pipeline modules"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        aliases = import_aliases(source.tree)
        findings: List[Finding] = []
        findings.extend(self._check_iteration(source))
        if source.rel.startswith(_CLOCK_SCOPES):
            findings.extend(self._check_clocks(source, aliases))
        return findings

    # -- unordered iteration -------------------------------------------------------

    def _check_iteration(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for function, _owner in walk_functions(source.tree):
            if not _ORDER_SENSITIVE.search(function.name):
                continue
            parents = {}
            for node in ast.walk(function):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            iterables: List[ast.expr] = []
            for node in ast.walk(function):
                if isinstance(node, ast.For):
                    iterables.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                label = self._unordered_label(iterable)
                if label is None or _is_sorted_wrapped(iterable, parents):
                    continue
                findings.append(self.finding(
                    source, iterable,
                    f"iteration over {label} in order-sensitive function "
                    f"`{function.name}` depends on hash/insertion order",
                    "wrap the iterable in sorted(...) so serialized/merged output "
                    "is identical across runs and replicas",
                ))
        return findings

    @staticmethod
    def _unordered_label(node: ast.expr) -> "str | None":
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return f"`{node.func.id}(...)`"
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                return "`.keys()`"
        if isinstance(node, (ast.BinOp,)) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            # `seen_a | seen_b` etc. — only flag when an operand is visibly a set.
            for side in (node.left, node.right):
                label = DeterminismRule._unordered_label(side)
                if label is not None:
                    return f"a set expression ({label})"
        return None

    # -- wall clocks ---------------------------------------------------------------

    def _check_clocks(self, source: SourceFile, aliases) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                name = canonical_name(node.func, aliases)
                label = _WALL_CLOCK.get(name or "")
                if label is not None:
                    findings.append(self.finding(
                        source, node,
                        f"wall-clock read `{label}` in a sketch/pipeline module",
                        "use time.perf_counter()/time.monotonic() for durations; "
                        "wall-clock state breaks replay determinism",
                    ))
        return findings
