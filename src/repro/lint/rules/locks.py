"""lock-discipline: an attribute written under a lock is written under it everywhere.

The threaded layers (``pipeline/``, ``service/``, ``replication/``,
``observability/``) follow one convention: shared mutable state on a class is
guarded by a ``self._lock``-style lock, and every mutation outside ``__init__``
happens inside ``with self._lock:``.  This rule infers, per class, which
``self._*`` attributes are written under a lock somewhere, and flags writes to
those same attributes that happen *outside* any lock in a non-``__init__``
method — the classic half-guarded race, where a torn or stale write only
surfaces under multi-worker load where it is hardest to reproduce.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.engine import Finding, Rule, SourceFile
from repro.lint.rules.base import assignment_targets, self_attribute

#: Only the threaded layers have a lock convention to enforce.
_SCOPES = ("pipeline/", "service/", "replication/", "observability/")

#: Methods where unguarded writes are construction, not racing.
_SETUP_METHODS = {"__init__", "__new__", "__setstate__"}


def _is_self_lock(node: ast.AST) -> bool:
    attr = self_attribute(node)
    return attr is not None and "lock" in attr.lower()


class _MethodWalker(ast.NodeVisitor):
    """Collect (attribute, line, under_lock) writes within one method."""

    def __init__(self) -> None:
        self.writes: List[Tuple[str, int, bool]] = []
        self._lock_depth = 0

    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(_is_self_lock(item.context_expr) for item in node.items)
        if holds_lock:
            self._lock_depth += 1
        self.generic_visit(node)
        if holds_lock:
            self._lock_depth -= 1

    def _record(self, node: ast.AST) -> None:
        for target in assignment_targets(node):
            attr = self_attribute(target)
            if attr is not None and "lock" not in attr.lower():
                self.writes.append((attr, target.lineno, self._lock_depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested functions (thread targets, closures) keep the enclosing lock
        # state only lexically; conservatively treat their writes as unlocked.
        depth, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = depth

    visit_AsyncFunctionDef = visit_FunctionDef


class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    description = (
        "flag self._x attributes mutated both with and without `with self._lock` "
        "in threaded modules (outside __init__)"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        if not source.rel.startswith(_SCOPES):
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _check_class(self, source: SourceFile, cls: ast.ClassDef) -> Iterable[Finding]:
        locked: Set[str] = set()
        unlocked: Dict[str, List[Tuple[int, str]]] = {}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _MethodWalker()
            for statement in item.body:
                walker.visit(statement)
            for attr, line, under_lock in walker.writes:
                if under_lock:
                    locked.add(attr)
                elif item.name not in _SETUP_METHODS:
                    unlocked.setdefault(attr, []).append((line, item.name))
        findings: List[Finding] = []
        for attr in sorted(locked):
            for line, method in unlocked.get(attr, []):
                findings.append(Finding(
                    rule=self.rule_id, path=str(source.path), line=line,
                    message=(
                        f"`self.{attr}` is written under a lock elsewhere in "
                        f"`{cls.name}` but mutated without one in `{method}`"
                    ),
                    hint=(
                        "take the same `with self._lock:` here, or pragma-suppress "
                        "with the reason the unguarded write is safe (e.g. "
                        "single-threaded setup before the threads start)"
                    ),
                ))
        return findings
