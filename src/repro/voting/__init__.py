"""Rank-aggregation (voting) substrate for the Borda and Maximin problems.

The paper's Definitions 6–9 consider streams whose items are *rankings* (total orders
over a candidate set) rather than single ids, motivated by rank aggregation on the web
and by voting streams: plurality and veto winners correspond to the ε-Maximum and
ε-Minimum problems, and Borda / maximin winners need the new algorithms of Theorems 5
and 6.

This subpackage provides:

* :mod:`repro.voting.rankings` — the :class:`Ranking` value type and permutation helpers,
* :mod:`repro.voting.scores` — exact Borda, maximin, plurality and veto scores,
* :mod:`repro.voting.elections` — an election container and winners under each rule,
* :mod:`repro.voting.generators` — vote-stream generators (impartial culture, Mallows
  model, planted winners, clickstream-style orderings).
"""

from repro.voting.rankings import Ranking
from repro.voting.scores import (
    borda_scores,
    maximin_scores,
    pairwise_defeats,
    plurality_scores,
    veto_scores,
)
from repro.voting.elections import Election
from repro.voting.generators import (
    impartial_culture,
    mallows_votes,
    planted_borda_winner,
    clickstream_orderings,
)

__all__ = [
    "Ranking",
    "borda_scores",
    "maximin_scores",
    "pairwise_defeats",
    "plurality_scores",
    "veto_scores",
    "Election",
    "impartial_culture",
    "mallows_votes",
    "planted_borda_winner",
    "clickstream_orderings",
]
