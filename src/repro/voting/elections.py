"""An election container: a list of votes plus winners under the standard rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.voting.rankings import Ranking
from repro.voting import scores as scoring


@dataclass
class Election:
    """A (streamed or materialized) election over ``num_candidates`` candidates."""

    num_candidates: int
    votes: List[Ranking] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        for vote in self.votes:
            self._check(vote)

    def _check(self, vote: Ranking) -> None:
        if vote.num_candidates != self.num_candidates:
            raise ValueError(
                f"vote over {vote.num_candidates} candidates added to an election "
                f"with {self.num_candidates}"
            )

    def add_vote(self, vote: Ranking) -> None:
        self._check(vote)
        self.votes.append(vote)

    def extend(self, votes: Sequence[Ranking]) -> None:
        for vote in votes:
            self.add_vote(vote)

    def __len__(self) -> int:
        return len(self.votes)

    def __iter__(self) -> Iterator[Ranking]:
        return iter(self.votes)

    # -- exact scores and winners --------------------------------------------------------

    def borda_scores(self) -> Dict[int, int]:
        return scoring.borda_scores(self.votes)

    def maximin_scores(self) -> Dict[int, int]:
        return scoring.maximin_scores(self.votes)

    def plurality_scores(self) -> Dict[int, int]:
        return scoring.plurality_scores(self.votes)

    def veto_scores(self) -> Dict[int, int]:
        return scoring.veto_scores(self.votes)

    def borda_winner(self) -> int:
        return scoring.borda_winner(self.votes)

    def maximin_winner(self) -> int:
        return scoring.maximin_winner(self.votes)

    def plurality_winner(self) -> int:
        plurality = self.plurality_scores()
        return min(plurality, key=lambda candidate: (-plurality[candidate], candidate))

    def veto_winner(self) -> int:
        """The candidate with the fewest last-place votes (the veto rule's winner)."""
        veto = self.veto_scores()
        return min(veto, key=lambda candidate: (veto[candidate], candidate))

    def max_borda_score(self) -> int:
        return max(self.borda_scores().values())

    def max_maximin_score(self) -> int:
        return max(self.maximin_scores().values())
