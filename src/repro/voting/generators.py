"""Vote-stream generators.

The ranking-based benchmarks need elections with known structure:

* **Impartial culture** — every vote is an independent uniformly random permutation; the
  null model, no candidate is systematically favored.
* **Mallows model** — votes concentrate around a reference ranking; the dispersion
  parameter controls how strong the consensus is.  This is the standard model for
  "rank aggregation on the web" style data the paper cites.
* **Planted Borda winner** — a designated candidate is moved to the front of a fraction
  of the votes, so the true Borda/maximin winner (and its margin) is known by
  construction.
* **Clickstream orderings** — orderings derived from a preference weight per "page",
  mimicking the website-visit-order motivation in Section 1.2 (Plackett–Luce sampling).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.primitives.rng import RandomSource
from repro.voting.rankings import Ranking


def impartial_culture(
    num_votes: int,
    num_candidates: int,
    rng: Optional[RandomSource] = None,
) -> List[Ranking]:
    """``num_votes`` independent uniformly random rankings."""
    if num_votes < 0:
        raise ValueError("num_votes must be non-negative")
    if num_candidates <= 0:
        raise ValueError("num_candidates must be positive")
    rng = rng if rng is not None else RandomSource()
    return [Ranking(rng.permutation(num_candidates)) for _ in range(num_votes)]


def mallows_votes(
    num_votes: int,
    num_candidates: int,
    dispersion: float = 0.7,
    reference: Optional[Ranking] = None,
    rng: Optional[RandomSource] = None,
) -> List[Ranking]:
    """Votes from the Mallows model around a reference ranking.

    Uses the repeated-insertion construction: the candidate at reference position ``i``
    is inserted into one of the ``i + 1`` available slots with probability proportional
    to ``dispersion^(i - slot)``.  ``dispersion = 1`` recovers impartial culture;
    ``dispersion -> 0`` concentrates on the reference ranking.
    """
    if not 0.0 < dispersion <= 1.0:
        raise ValueError("dispersion must be in (0, 1]")
    rng = rng if rng is not None else RandomSource()
    if reference is None:
        reference = Ranking.identity(num_candidates)
    if reference.num_candidates != num_candidates:
        raise ValueError("reference ranking has the wrong number of candidates")
    votes: List[Ranking] = []
    for _ in range(num_votes):
        order: List[int] = []
        for index, candidate in enumerate(reference.order):
            weights = [dispersion ** (index - slot) for slot in range(index + 1)]
            total = sum(weights)
            target = rng.random() * total
            running = 0.0
            chosen_slot = index
            for slot, weight in enumerate(weights):
                running += weight
                if target <= running:
                    chosen_slot = slot
                    break
            order.insert(chosen_slot, candidate)
        votes.append(Ranking(order))
    return votes


def planted_borda_winner(
    num_votes: int,
    num_candidates: int,
    winner: int,
    boost_fraction: float = 0.5,
    rng: Optional[RandomSource] = None,
) -> List[Ranking]:
    """Impartial-culture votes where the planted winner is promoted to first place in a
    ``boost_fraction`` fraction of the votes.

    The promoted candidate's expected Borda score exceeds every other candidate's by
    roughly ``boost_fraction * num_votes * (num_candidates - 1) / 2``, so for reasonable
    parameters the planted candidate is the true Borda winner with overwhelming
    probability — which the generator's tests verify.
    """
    if not 0 <= winner < num_candidates:
        raise ValueError("winner must be a valid candidate")
    if not 0.0 <= boost_fraction <= 1.0:
        raise ValueError("boost_fraction must be in [0, 1]")
    rng = rng if rng is not None else RandomSource()
    votes: List[Ranking] = []
    for index in range(num_votes):
        order = rng.permutation(num_candidates)
        if rng.bernoulli(boost_fraction):
            order.remove(winner)
            order.insert(0, winner)
        votes.append(Ranking(order))
    return votes


def clickstream_orderings(
    num_sessions: int,
    num_pages: int,
    popularity_skew: float = 1.0,
    rng: Optional[RandomSource] = None,
) -> List[Ranking]:
    """Plackett–Luce orderings with Zipfian page popularities.

    Each "session" orders all pages by repeatedly choosing the next page proportionally
    to its popularity weight (``1 / (page + 1)^popularity_skew``), mimicking the order in
    which a user visits the parts of a website (paper Section 1.2).
    """
    if num_sessions < 0:
        raise ValueError("num_sessions must be non-negative")
    if num_pages <= 0:
        raise ValueError("num_pages must be positive")
    rng = rng if rng is not None else RandomSource()
    base_weights = [1.0 / ((page + 1) ** popularity_skew) for page in range(num_pages)]
    sessions: List[Ranking] = []
    for _ in range(num_sessions):
        remaining = list(range(num_pages))
        weights = [base_weights[page] for page in remaining]
        order: List[int] = []
        while remaining:
            total = sum(weights)
            target = rng.random() * total
            running = 0.0
            chosen_index = len(remaining) - 1
            for index, weight in enumerate(weights):
                running += weight
                if target <= running:
                    chosen_index = index
                    break
            order.append(remaining.pop(chosen_index))
            weights.pop(chosen_index)
        sessions.append(Ranking(order))
    return sessions
