"""Rankings (total orders over a candidate set).

A vote in the paper's ranking-based problems is an element of ``L(U)``: a permutation of
the ``n`` candidates.  :class:`Ranking` stores the permutation in "preference order"
(most preferred candidate first) and offers the queries the scoring rules need: the
position of a candidate, whether one candidate is ranked ahead of another, and the
number of candidates a given candidate beats.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple


class Ranking:
    """A total order over the candidates ``0, 1, ..., n-1`` (most preferred first)."""

    __slots__ = ("order", "_positions")

    def __init__(self, order: Sequence[int]) -> None:
        order_list = list(order)
        n = len(order_list)
        seen = [False] * n
        for candidate in order_list:
            if not 0 <= candidate < n or seen[candidate]:
                raise ValueError(f"{order_list!r} is not a permutation of 0..{n - 1}")
            seen[candidate] = True
        self.order: Tuple[int, ...] = tuple(order_list)
        positions: Dict[int, int] = {}
        for position, candidate in enumerate(order_list):
            positions[candidate] = position
        self._positions = positions

    # -- basic container protocol -----------------------------------------------------

    @property
    def num_candidates(self) -> int:
        return len(self.order)

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self) -> Iterator[int]:
        return iter(self.order)

    def __getitem__(self, position: int) -> int:
        return self.order[position]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ranking) and self.order == other.order

    def __hash__(self) -> int:
        return hash(self.order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ranking({list(self.order)!r})"

    # -- queries used by the scoring rules ---------------------------------------------

    def position_of(self, candidate: int) -> int:
        """Zero-based position of the candidate (0 = most preferred)."""
        return self._positions[candidate]

    def prefers(self, candidate_a: int, candidate_b: int) -> bool:
        """True iff ``candidate_a`` is ranked ahead of ``candidate_b``."""
        return self._positions[candidate_a] < self._positions[candidate_b]

    def candidates_beaten_by(self, candidate: int) -> int:
        """Number of candidates ranked behind ``candidate`` (its Borda contribution)."""
        return self.num_candidates - 1 - self._positions[candidate]

    def top(self) -> int:
        """The most preferred candidate (the plurality vote)."""
        return self.order[0]

    def bottom(self) -> int:
        """The least preferred candidate (the veto vote)."""
        return self.order[-1]

    def restricted_to(self, candidates: Sequence[int]) -> "Ranking":
        """The induced ranking over a subset of candidates, relabelled to 0..k-1.

        The relabelling maps the i-th smallest id in ``candidates`` to i, preserving the
        preference order among the kept candidates.
        """
        keep = sorted(set(candidates))
        relabel = {candidate: index for index, candidate in enumerate(keep)}
        induced = [relabel[c] for c in self.order if c in relabel]
        return Ranking(induced)

    def reversed(self) -> "Ranking":
        """The reverse ranking (least preferred candidate first)."""
        return Ranking(list(reversed(self.order)))

    # -- constructors -------------------------------------------------------------------

    @classmethod
    def identity(cls, num_candidates: int) -> "Ranking":
        """The ranking 0 ≻ 1 ≻ ... ≻ n-1."""
        return cls(range(num_candidates))

    @classmethod
    def from_positions(cls, positions: Dict[int, int]) -> "Ranking":
        """Build a ranking from a candidate -> position map."""
        order: List[int] = [0] * len(positions)
        for candidate, position in positions.items():
            order[position] = candidate
        return cls(order)


def kendall_tau_distance(ranking_a: Ranking, ranking_b: Ranking) -> int:
    """Number of discordant pairs between two rankings (the Kendall tau distance).

    Used by the Mallows vote generator and by tests that check the generator's
    concentration around its reference ranking.
    """
    if ranking_a.num_candidates != ranking_b.num_candidates:
        raise ValueError("rankings must be over the same number of candidates")
    n = ranking_a.num_candidates
    distance = 0
    for first in range(n):
        for second in range(first + 1, n):
            a_prefers = ranking_a.prefers(first, second)
            b_prefers = ranking_b.prefers(first, second)
            if a_prefers != b_prefers:
                distance += 1
    return distance
