"""Exact scoring rules over a collection of votes (rankings).

These are the ground-truth oracles for the ranking-based problems:

* **Borda score** of candidate ``i``: the sum over votes of the number of candidates
  ranked behind ``i`` (paper Definition 6/7 preamble).
* **Maximin score** of candidate ``i``: the minimum over opponents ``j`` of the number
  of votes that rank ``i`` ahead of ``j`` (paper Definition 8/9 preamble).
* **Plurality score**: number of votes whose top choice is ``i`` (the ε-Maximum problem
  on the induced item stream of top choices).
* **Veto score**: number of votes whose bottom choice is ``i`` (the ε-Minimum problem's
  "number of dislikes").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.voting.rankings import Ranking


def _materialize(votes: Iterable[Ranking]) -> List[Ranking]:
    votes_list = list(votes)
    if not votes_list:
        raise ValueError("scores require at least one vote")
    num_candidates = votes_list[0].num_candidates
    for vote in votes_list:
        if vote.num_candidates != num_candidates:
            raise ValueError("all votes must rank the same number of candidates")
    return votes_list


def borda_scores(votes: Iterable[Ranking]) -> Dict[int, int]:
    """Exact Borda score of every candidate."""
    votes_list = _materialize(votes)
    num_candidates = votes_list[0].num_candidates
    scores = {candidate: 0 for candidate in range(num_candidates)}
    for vote in votes_list:
        for candidate in range(num_candidates):
            scores[candidate] += vote.candidates_beaten_by(candidate)
    return scores


def pairwise_defeats(votes: Iterable[Ranking]) -> List[List[int]]:
    """Matrix ``D`` with ``D[i][j]`` = number of votes ranking ``i`` ahead of ``j``."""
    votes_list = _materialize(votes)
    num_candidates = votes_list[0].num_candidates
    matrix = [[0] * num_candidates for _ in range(num_candidates)]
    for vote in votes_list:
        order = vote.order
        for position, winner in enumerate(order):
            for loser in order[position + 1 :]:
                matrix[winner][loser] += 1
    return matrix


def maximin_scores(votes: Iterable[Ranking]) -> Dict[int, int]:
    """Exact maximin score of every candidate."""
    votes_list = _materialize(votes)
    num_candidates = votes_list[0].num_candidates
    if num_candidates == 1:
        return {0: len(votes_list)}
    matrix = pairwise_defeats(votes_list)
    return {
        candidate: min(
            matrix[candidate][opponent]
            for opponent in range(num_candidates)
            if opponent != candidate
        )
        for candidate in range(num_candidates)
    }


def plurality_scores(votes: Iterable[Ranking]) -> Dict[int, int]:
    """Number of votes whose most preferred candidate is each candidate."""
    votes_list = _materialize(votes)
    num_candidates = votes_list[0].num_candidates
    scores = {candidate: 0 for candidate in range(num_candidates)}
    for vote in votes_list:
        scores[vote.top()] += 1
    return scores


def veto_scores(votes: Iterable[Ranking]) -> Dict[int, int]:
    """Number of votes whose least preferred candidate is each candidate."""
    votes_list = _materialize(votes)
    num_candidates = votes_list[0].num_candidates
    scores = {candidate: 0 for candidate in range(num_candidates)}
    for vote in votes_list:
        scores[vote.bottom()] += 1
    return scores


def borda_winner(votes: Iterable[Ranking]) -> int:
    """The candidate with the highest Borda score (ties to the smallest id)."""
    scores = borda_scores(votes)
    return min(scores, key=lambda candidate: (-scores[candidate], candidate))


def maximin_winner(votes: Iterable[Ranking]) -> int:
    """The candidate with the highest maximin score (ties to the smallest id)."""
    scores = maximin_scores(votes)
    return min(scores, key=lambda candidate: (-scores[candidate], candidate))
