"""Algorithm 2 / Theorem 2 — the space-optimal (ε,ϕ)-List heavy hitters.

Space: ``O(ε⁻¹ log ϕ⁻¹ + ϕ⁻¹ log n + log log m)`` bits — the paper's headline result,
matching the lower bound of Theorems 9 and 14 up to constants.

Structure (paper Section 3.1.2, Algorithm 2):

* Sample ``ℓ = O(ε⁻²)`` stream items (line 10); solve the problem on the sample.
* ``T1`` — a Misra–Gries table over the *actual* ids with ``O(1/ϕ)`` counters
  (line 11): it produces the candidate set, every ϕ-heavy item of the sample is in it.
* For each of ``O(log ϕ⁻¹)`` independent repetitions ``j``, hash the universe into
  ``O(1/ε)`` buckets (line 13) and maintain per bucket an *accelerated counter*:

  - ``T2[i, j]`` counts an ε-rate subsample of the bucket's arrivals (line 14) and
    provides a running factor-4 approximation of the bucket's sampled frequency
    (Claim 1);
  - ``T3[i, j, t]`` counts arrivals assigned to epoch ``t = ⌊log(c·T2[i,j]²)⌋`` and
    accepted with probability ``min(ε·2ᵗ, 1)`` (lines 15–17).

  The bucket frequency estimate is ``Σ_t T3[i,j,t] / min(ε·2ᵗ,1)`` (line 23), which is
  unbiased with variance ``O(ε⁻²)`` (Claim 2).
* At reporting time, each candidate's frequency is the **median** over the ``j``
  repetitions of its bucket's estimate (line 24), and candidates above
  ``(ϕ − ε/2)·s`` are returned (lines 25–26).

The numerical constants in the paper (ℓ = 10⁵ ε⁻², 200 log(12/ϕ) repetitions,
100/ε buckets, epoch scale 10⁻⁶) are chosen for convenience of the analysis, not for
practice; they are exposed as constructor parameters with practical defaults (in
particular ``epoch_scale`` defaults to 1.0, matched to the smaller sample this
reproduction uses — see :mod:`repro.primitives.accelerated`), and the benchmark in
``benchmarks/bench_table1_heavy_hitters.py`` reports the measured behaviour.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List, Optional

from repro.baselines.misra_gries import MisraGriesTable
from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.accelerated import EpochAcceleratedCounter
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler
from repro.primitives.space import bits_for_value


class OptimalListHeavyHitters(FrequencyEstimator):
    """Algorithm 2 of the paper: Misra–Gries candidates + hashed accelerated counters."""

    def __init__(
        self,
        epsilon: float,
        phi: float,
        universe_size: int,
        stream_length: int,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
        repetitions: Optional[int] = None,
        buckets_per_repetition: Optional[int] = None,
        sample_size_constant: float = 6.0,
        epoch_scale: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not epsilon < phi <= 1.0:
            raise ValueError("phi must satisfy epsilon < phi <= 1")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive (use the unknown-length wrapper otherwise)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")

        self.epsilon = epsilon
        self.phi = phi
        self.delta = delta
        self.universe_size = universe_size
        self.stream_length = stream_length
        rng = rng if rng is not None else RandomSource()

        # Error budget split as in Algorithm 1: half for sampling, half for counting.
        self._sampling_epsilon = epsilon / 2.0
        # Line 2: the sampled-stream length l = Theta(eps^-2).
        self.target_sample_size = int(
            math.ceil(
                sample_size_constant
                * math.log(6.0 / delta)
                / (self._sampling_epsilon ** 2)
            )
        )
        probability = min(1.0, 6.0 * self.target_sample_size / stream_length)
        self._sampler = CoinFlipSampler(probability, rng=rng.spawn(1))
        self.sample_size = 0

        # Line 5: T1, the candidate filter — Misra–Gries over actual ids, O(1/phi) slots.
        self.candidate_capacity = int(math.ceil(2.0 / phi)) + 1
        self.t1 = MisraGriesTable(num_counters=self.candidate_capacity)

        # Line 4: the per-repetition bucket hashes into O(1/eps) buckets.
        self.repetitions = (
            repetitions
            if repetitions is not None
            else max(3, int(math.ceil(4.0 * math.log2(max(2.0, 1.0 / phi)))) | 1)
        )
        if self.repetitions % 2 == 0:
            self.repetitions += 1  # odd, so the median is a single repetition's value
        self.num_buckets = (
            buckets_per_repetition
            if buckets_per_repetition is not None
            else int(math.ceil(16.0 / epsilon))
        )
        family = UniversalHashFamily(universe_size, self.num_buckets, rng=rng.spawn(2))
        self.hash_functions: List[UniversalHashFunction] = family.draw_many(self.repetitions)

        # Lines 6-7: T2 / T3 — one epoch-structured accelerated counter per
        # (repetition, bucket) pair, allocated lazily.
        self.epoch_scale = epoch_scale
        self._counter_rng = rng.spawn(3)
        self.counters: List[Dict[int, EpochAcceleratedCounter]] = [
            {} for _ in range(self.repetitions)
        ]

    # -- stream interface ---------------------------------------------------------------

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        # Line 10: sample with rate l/m.
        if not self._sampler.decide():
            return
        self.sample_size += 1
        # Line 11: Misra–Gries update of the candidate table with the actual id.
        self.t1.update(item)
        # Lines 12-17: update every repetition's accelerated counter for this id's bucket.
        for repetition in range(self.repetitions):
            bucket = self.hash_functions[repetition](item)
            counter = self.counters[repetition].get(bucket)
            if counter is None:
                counter = EpochAcceleratedCounter(
                    epsilon=self.epsilon,
                    rng=self._counter_rng.spawn(repetition * self.num_buckets + bucket),
                    epoch_scale=self.epoch_scale,
                )
                self.counters[repetition][bucket] = counter
            counter.offer()

    # -- queries ------------------------------------------------------------------------

    def _scale(self) -> float:
        if self.sample_size == 0:
            return 0.0
        return self.items_processed / self.sample_size

    def _sampled_estimate(self, item: int) -> float:
        """Median over repetitions of the item's bucket estimate (Algorithm 2 line 24)."""
        estimates = []
        for repetition in range(self.repetitions):
            bucket = self.hash_functions[repetition](item)
            counter = self.counters[repetition].get(bucket)
            estimates.append(counter.estimate() if counter is not None else 0.0)
        return float(statistics.median(estimates))

    def estimate(self, item: int) -> float:
        """Estimated absolute frequency of ``item`` in the stream seen so far."""
        return self._sampled_estimate(item) * self._scale()

    def report(self) -> HeavyHittersReport:
        """Lines 20-27: estimate every candidate, keep those above (ϕ − ε/2)·m."""
        threshold = (self.phi - self.epsilon / 2.0) * self.items_processed
        scale = self._scale()
        items: Dict[int, float] = {}
        for candidate in self.t1.counters:
            estimated = self._sampled_estimate(candidate) * scale
            if estimated > threshold:
                items[candidate] = estimated
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=self.phi,
        )

    # -- space accounting ----------------------------------------------------------------

    def refresh_space(self) -> None:
        # Sampler (Lemma 1): O(log log m) bits.
        self.space.set_component("sampler", self._sampler.space_bits())
        # T1: O(1/phi) slots of (log n + log sample-size) bits — the phi^-1 log n term.
        id_bits = bits_for_value(self.universe_size - 1)
        value_bits = bits_for_value(max(1, 11 * self.target_sample_size))
        self.space.set_component("T1", self.t1.space_bits(id_bits, value_bits))
        # Hash function descriptions: O(log n) bits each, O(log phi^-1) of them.
        self.space.set_component(
            "hash_functions",
            sum(h.description_bits() for h in self.hash_functions),
        )
        # T2/T3: the accelerated counters — the eps^-1 log phi^-1 term.
        counter_bits = 0
        for repetition in range(self.repetitions):
            for counter in self.counters[repetition].values():
                counter_bits += counter.space_bits()
        self.space.set_component("T2_T3", counter_bits)
