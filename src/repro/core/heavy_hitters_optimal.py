"""Algorithm 2 / Theorem 2 — the space-optimal (ε,ϕ)-List heavy hitters.

Space: ``O(ε⁻¹ log ϕ⁻¹ + ϕ⁻¹ log n + log log m)`` bits — the paper's headline result,
matching the lower bound of Theorems 9 and 14 up to constants.

Structure (paper Section 3.1.2, Algorithm 2):

* Sample ``ℓ = O(ε⁻²)`` stream items (line 10); solve the problem on the sample.
* ``T1`` — a Misra–Gries table over the *actual* ids with ``O(1/ϕ)`` counters
  (line 11): it produces the candidate set, every ϕ-heavy item of the sample is in it.
* For each of ``O(log ϕ⁻¹)`` independent repetitions ``j``, hash the universe into
  ``O(1/ε)`` buckets (line 13) and maintain per bucket an *accelerated counter*:

  - ``T2[i, j]`` counts an ε-rate subsample of the bucket's arrivals (line 14) and
    provides a running factor-4 approximation of the bucket's sampled frequency
    (Claim 1);
  - ``T3[i, j, t]`` counts arrivals assigned to epoch ``t = ⌊log(c·T2[i,j]²)⌋`` and
    accepted with probability ``min(ε·2ᵗ, 1)`` (lines 15–17).

  The bucket frequency estimate is ``Σ_t T3[i,j,t] / min(ε·2ᵗ,1)`` (line 23), which is
  unbiased with variance ``O(ε⁻²)`` (Claim 2).
* At reporting time, each candidate's frequency is the **median** over the ``j``
  repetitions of its bucket's estimate (line 24), and candidates above
  ``(ϕ − ε/2)·s`` are returned (lines 25–26).

The numerical constants in the paper (ℓ = 10⁵ ε⁻², 200 log(12/ϕ) repetitions,
100/ε buckets, epoch scale 10⁻⁶) are chosen for convenience of the analysis, not for
practice; they are exposed as constructor parameters with practical defaults (in
particular ``epoch_scale`` defaults to 1.0, matched to the smaller sample this
reproduction uses — see :mod:`repro.primitives.accelerated`), and the benchmark in
``benchmarks/bench_table1_heavy_hitters.py`` reports the measured behaviour.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.misra_gries import MisraGriesTable
from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.accelerated import EpochAcceleratedCounter
from repro.primitives.batching import aggregate_counts, as_item_array, validate_universe
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler
from repro.primitives.space import bits_for_value


class OptimalListHeavyHitters(FrequencyEstimator):
    """Algorithm 2 of the paper: Misra–Gries candidates + hashed accelerated counters."""

    def __init__(
        self,
        epsilon: float,
        phi: float,
        universe_size: int,
        stream_length: int,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
        repetitions: Optional[int] = None,
        buckets_per_repetition: Optional[int] = None,
        sample_size_constant: float = 6.0,
        epoch_scale: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not epsilon < phi <= 1.0:
            raise ValueError("phi must satisfy epsilon < phi <= 1")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive (use the unknown-length wrapper otherwise)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")

        self.epsilon = epsilon
        self.phi = phi
        self.delta = delta
        self.universe_size = universe_size
        self.stream_length = stream_length
        rng = rng if rng is not None else RandomSource()

        # Error budget split as in Algorithm 1: half for sampling, half for counting.
        self._sampling_epsilon = epsilon / 2.0
        # Line 2: the sampled-stream length l = Theta(eps^-2).
        self.target_sample_size = int(
            math.ceil(
                sample_size_constant
                * math.log(6.0 / delta)
                / (self._sampling_epsilon ** 2)
            )
        )
        probability = min(1.0, 6.0 * self.target_sample_size / stream_length)
        self._sampler = CoinFlipSampler(probability, rng=rng.spawn(1))
        self.sample_size = 0

        # Line 5: T1, the candidate filter — Misra–Gries over actual ids, O(1/phi) slots.
        self.candidate_capacity = int(math.ceil(2.0 / phi)) + 1
        self.t1 = MisraGriesTable(num_counters=self.candidate_capacity)

        # Line 4: the per-repetition bucket hashes into O(1/eps) buckets.
        self.repetitions = (
            repetitions
            if repetitions is not None
            else max(3, int(math.ceil(4.0 * math.log2(max(2.0, 1.0 / phi)))) | 1)
        )
        if self.repetitions % 2 == 0:
            self.repetitions += 1  # odd, so the median is a single repetition's value
        self.num_buckets = (
            buckets_per_repetition
            if buckets_per_repetition is not None
            else int(math.ceil(16.0 / epsilon))
        )
        family = UniversalHashFamily(universe_size, self.num_buckets, rng=rng.spawn(2))
        self.hash_functions: List[UniversalHashFunction] = family.draw_many(self.repetitions)

        # Lines 6-7: T2 / T3 — one epoch-structured accelerated counter per
        # (repetition, bucket) pair, allocated lazily.
        self.epoch_scale = epoch_scale
        self._counter_rng = rng.spawn(3)
        self.counters: List[Dict[int, EpochAcceleratedCounter]] = [
            {} for _ in range(self.repetitions)
        ]
        # Bulk randomness for the batched ingestion path (vectorized binomial draws
        # across a whole repetition's buckets); the per-item path never touches it.
        self._batch_source = rng.spawn(4)

    # -- stream interface ---------------------------------------------------------------

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        # Line 10: sample with rate l/m.
        if not self._sampler.decide():
            return
        self.sample_size += 1
        # Line 11: Misra–Gries update of the candidate table with the actual id.
        self.t1.update(item)
        # Lines 12-17: update every repetition's accelerated counter for this id's bucket.
        for repetition in range(self.repetitions):
            bucket = self.hash_functions[repetition](item)
            self._counter_for(repetition, bucket).offer()

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion (statistically equivalent to sequential insertion).

        The three batch tricks of the fast path, matched to Algorithm 2's lines:

        * line 10 — geometric skip-ahead sampling: RNG work proportional to the number
          of *sampled* arrivals, not the batch length;
        * lines 12-13 — per repetition, one vectorized Carter–Wegman pass over the
          distinct sampled ids followed by a ``bincount`` groups the whole batch by
          (repetition, bucket);
        * lines 14-17 — each bucket's accelerated counter absorbs its group with
          :meth:`~repro.primitives.accelerated.EpochAcceleratedCounter.offer_many`,
          whose geometric/binomial run decomposition is distributionally identical to
          per-occurrence offers.  Occurrence order across buckets does not matter: a
          counter's law depends only on its own occurrence count.

        ``T1`` receives one weighted Misra–Gries update per distinct sampled id.  RNG
        consumption order differs from the per-item path (same seed diverges bit-wise);
        estimator, (ε, ϕ) guarantee and space accounting are identical.
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        if array.size == 0:
            return
        self.items_processed += int(array.size)
        # Line 10: skip-ahead sampling.
        sampled_indices = self._sampler.accepted_indices(int(array.size))
        if not sampled_indices:
            return
        sampled = array[sampled_indices]
        self.sample_size += int(sampled.size)
        values, counts = aggregate_counts(sampled)
        # Line 11: one weighted Misra–Gries merge per distinct sampled id.
        self.t1.update_many(values.tolist(), counts.tolist())
        # Lines 12-17: group by (repetition, bucket), then absorb each bucket's group
        # with vectorized binomial draws across the whole repetition.
        weights = counts.astype(np.float64)
        generator = self._batch_source.numpy_generator()
        epsilon, scale = self.epsilon, self.epoch_scale
        for repetition in range(self.repetitions):
            buckets = self.hash_functions[repetition].hash_many(values)
            per_bucket = np.bincount(buckets, weights=weights, minlength=self.num_buckets)
            occupied = np.nonzero(per_bucket)[0]
            occurrence_counts = per_bucket[occupied].astype(np.int64)
            # Counters are allocated for every touched bucket, as the per-item path
            # does, so the space accounting after a batch matches sequential ingestion.
            counters = [
                self._counter_for(repetition, bucket) for bucket in occupied.tolist()
            ]
            # Line 14: how many of each bucket's occurrences increment T2 — one
            # vectorized binomial for the whole repetition.
            t2_increments = generator.binomial(occurrence_counts, epsilon)
            # Line 15: each bucket's current epoch and acceptance probability,
            # vectorized (matches EpochAcceleratedCounter.current_epoch /
            # increment_probability bit for bit).
            subsamples = np.fromiter(
                (counter.subsample_count for counter in counters),
                dtype=np.int64,
                count=len(counters),
            )
            squared = scale * subsamples.astype(np.float64) ** 2
            active = squared >= 1.0
            epochs = np.full(len(counters), -1, dtype=np.int64)
            epochs[active] = np.floor(np.log2(squared[active])).astype(np.int64)
            probabilities = np.zeros(len(counters))
            probabilities[active] = np.minimum(
                epsilon * np.exp2(epochs[active].astype(np.float64)), 1.0
            )
            # Common case (light buckets): T2 does not move, so the epoch is fixed for
            # the whole group and T3 takes one binomial — vectorized across buckets.
            fixed_epoch = t2_increments == 0
            t3_mask = fixed_epoch & active
            t3_increments = np.zeros(len(counters), dtype=np.int64)
            if t3_mask.any():
                t3_increments[t3_mask] = generator.binomial(
                    occurrence_counts[t3_mask], probabilities[t3_mask]
                )
            for index in np.nonzero(t3_increments)[0].tolist():
                counter = counters[index]
                epoch = int(epochs[index])
                counter.epoch_counts[epoch] = counter.epoch_counts.get(epoch, 0) + int(
                    t3_increments[index]
                )
            # Heavy buckets: T2 moves mid-group, so replay the group conditioned on the
            # drawn number of T2 increments (exact run decomposition).
            for index in np.nonzero(~fixed_epoch)[0].tolist():
                counters[index].offer_many_given_successes(
                    int(occurrence_counts[index]), int(t2_increments[index])
                )

    def merge(self, other: "OptimalListHeavyHitters") -> None:
        """Fold another shard's Algorithm 2 state into this one.

        Requirements (the sharded executor arranges both): identical parameters
        (ε, ϕ, repetitions, buckets, epoch scale) and *shared* bucket hash functions,
        so that bucket ``i`` of repetition ``j`` means the same slice of the universe
        in both instances.  The combine is then:

        * ``T1`` — the Misra–Gries candidate tables merge losslessly
          (:meth:`~repro.baselines.misra_gries.MisraGriesTable.merge`), so every item
          that is ϕ-heavy in the concatenated sample survives as a candidate;
        * ``T2``/``T3`` — per (repetition, bucket), the accelerated counters combine
          *additively* (:meth:`~repro.primitives.accelerated.EpochAcceleratedCounter.merge`):
          the bucket estimate is unbiased for the summed occurrence count, with summed
          (not inflated) variance — see that method for the expectation/variance
          caveats;
        * sample and stream counts add, so the sample-to-stream rescaling factor is the
          combined one.

        Each shard must have been built with the *full* stream length (the sampling
        rate is global), which :class:`repro.sharding.ShardedExecutor` does.
        """
        if not isinstance(other, OptimalListHeavyHitters):
            raise TypeError(
                f"cannot merge OptimalListHeavyHitters with {type(other).__name__}"
            )
        if (
            other.epsilon != self.epsilon
            or other.phi != self.phi
            or other.universe_size != self.universe_size
            or other.repetitions != self.repetitions
            or other.num_buckets != self.num_buckets
            or other.epoch_scale != self.epoch_scale
            # The sampling rate is derived from the (full) stream length, so a
            # mismatch would silently combine samples drawn at different rates.
            or other.stream_length != self.stream_length
        ):
            raise ValueError("cannot merge Algorithm 2 instances with different parameters")
        if other.hash_functions != self.hash_functions:
            raise ValueError(
                "cannot merge Algorithm 2 instances with different bucket hash "
                "functions; build the shards with shared hash functions "
                "(see repro.sharding)"
            )
        self.t1.merge(other.t1)
        for repetition in range(self.repetitions):
            mine = self.counters[repetition]
            for bucket, counter in other.counters[repetition].items():
                existing = mine.get(bucket)
                if existing is None:
                    mine[bucket] = counter
                else:
                    existing.merge(counter)
        self.sample_size += other.sample_size
        self.items_processed += other.items_processed

    def _counter_for(self, repetition: int, bucket: int) -> EpochAcceleratedCounter:
        """The (repetition, bucket) accelerated counter, allocated on first touch."""
        counter = self.counters[repetition].get(bucket)
        if counter is None:
            counter = EpochAcceleratedCounter(
                epsilon=self.epsilon,
                rng=self._counter_rng.spawn(repetition * self.num_buckets + bucket),
                epoch_scale=self.epoch_scale,
            )
            self.counters[repetition][bucket] = counter
        return counter

    # -- pickling -----------------------------------------------------------------------
    #
    # The sharded executor ships sketches across process boundaries; a consumed sketch
    # holds tens of thousands of per-bucket counter objects, so the default pickling
    # (one object + one dict each) dominates the parallel driver's overhead.  Instead
    # the counters are packed into a handful of numpy arrays per repetition: bucket
    # ids, subsample counts, flattened (epoch, count) pairs with offsets, and one
    # derived RNG seed per counter (RandomSource re-seeds on serialize — see
    # repro.primitives.rng).  Transport cost is bounded by the summary size.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        packed = []
        for per_repetition in self.counters:
            size = len(per_repetition)
            buckets = np.fromiter(per_repetition.keys(), dtype=np.int64, count=size)
            subsamples = np.fromiter(
                (counter.subsample_count for counter in per_repetition.values()),
                dtype=np.int64,
                count=size,
            )
            seeds = np.empty(size, dtype=np.int64)
            epochs_flat: List[int] = []
            counts_flat: List[int] = []
            offsets = np.empty(size + 1, dtype=np.int64)
            offsets[0] = 0
            for index, counter in enumerate(per_repetition.values()):
                seed = counter._rng.__getstate__()["seed"]
                seeds[index] = -1 if seed is None else seed
                for epoch, count in counter.epoch_counts.items():
                    epochs_flat.append(epoch)
                    counts_flat.append(count)
                offsets[index + 1] = len(epochs_flat)
            packed.append(
                (
                    buckets,
                    subsamples,
                    seeds,
                    np.asarray(epochs_flat, dtype=np.int64),
                    np.asarray(counts_flat, dtype=np.int64),
                    offsets,
                )
            )
        state["counters"] = ("packed-v1", packed)
        return state

    def __setstate__(self, state: dict) -> None:
        counters = state.pop("counters")
        self.__dict__.update(state)
        if not (isinstance(counters, tuple) and counters[0] == "packed-v1"):
            self.counters = counters
            return
        rebuilt: List[Dict[int, EpochAcceleratedCounter]] = []
        for buckets, subsamples, seeds, epochs, counts, offsets in counters[1]:
            per_repetition: Dict[int, EpochAcceleratedCounter] = {}
            bucket_list = buckets.tolist()
            subsample_list = subsamples.tolist()
            seed_list = seeds.tolist()
            epoch_list = epochs.tolist()
            count_list = counts.tolist()
            offset_list = offsets.tolist()
            for index, bucket in enumerate(bucket_list):
                counter = EpochAcceleratedCounter.__new__(EpochAcceleratedCounter)
                counter.epsilon = self.epsilon
                counter.epoch_scale = self.epoch_scale
                counter.subsample_count = subsample_list[index]
                begin, end = offset_list[index], offset_list[index + 1]
                counter.epoch_counts = dict(zip(epoch_list[begin:end], count_list[begin:end]))
                seed = seed_list[index]
                counter._rng = RandomSource(None if seed < 0 else seed)
                per_repetition[bucket] = counter
            rebuilt.append(per_repetition)
        self.counters = rebuilt

    # -- queries ------------------------------------------------------------------------

    def _scale(self) -> float:
        if self.sample_size == 0:
            return 0.0
        return self.items_processed / self.sample_size

    def _sampled_estimate(self, item: int) -> float:
        """Median over repetitions of the item's bucket estimate (Algorithm 2 line 24)."""
        estimates = []
        for repetition in range(self.repetitions):
            bucket = self.hash_functions[repetition](item)
            counter = self.counters[repetition].get(bucket)
            estimates.append(counter.estimate() if counter is not None else 0.0)
        return float(statistics.median(estimates))

    def estimate(self, item: int) -> float:
        """Estimated absolute frequency of ``item`` in the stream seen so far."""
        return self._sampled_estimate(item) * self._scale()

    def report(self) -> HeavyHittersReport:
        """Lines 20-27: estimate every candidate, keep those above (ϕ − ε/2)·m."""
        threshold = (self.phi - self.epsilon / 2.0) * self.items_processed
        scale = self._scale()
        items: Dict[int, float] = {}
        for candidate in self.t1.counters:
            estimated = self._sampled_estimate(candidate) * scale
            if estimated > threshold:
                items[candidate] = estimated
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=self.phi,
        )

    # -- space accounting ----------------------------------------------------------------

    def refresh_space(self) -> None:
        # Sampler (Lemma 1): O(log log m) bits.
        self.space.set_component("sampler", self._sampler.space_bits())
        # T1: O(1/phi) slots of (log n + log sample-size) bits — the phi^-1 log n term.
        id_bits = bits_for_value(self.universe_size - 1)
        value_bits = bits_for_value(max(1, 11 * self.target_sample_size))
        self.space.set_component("T1", self.t1.space_bits(id_bits, value_bits))
        # Hash function descriptions: O(log n) bits each, O(log phi^-1) of them.
        self.space.set_component(
            "hash_functions",
            sum(h.description_bits() for h in self.hash_functions),
        )
        # T2/T3: the accelerated counters — the eps^-1 log phi^-1 term.
        counter_bits = 0
        for repetition in range(self.repetitions):
            for counter in self.counters[repetition].values():
                counter_bits += counter.space_bits()
        self.space.set_component("T2_T3", counter_bits)
