"""Common protocol for all streaming algorithms in the package.

The paper's model (Section 2.1) is a single pass over an insertion-only stream; the
algorithm keeps a small state between items, and at the end of the stream reports its
answer.  Every algorithm and baseline in this package therefore exposes the same
operations:

* ``insert(item)`` — process one stream insertion,
* ``insert_many(items)`` — process a batch of insertions (see the contract below),
* ``report()`` — produce the algorithm's answer (type depends on the problem),
* ``space_bits()`` — the number of bits of state the algorithm currently holds, as
  accounted by its :class:`~repro.primitives.space.SpaceMeter`.

Item streams use non-negative integer ids in ``[0, n)`` (the paper's universe ``[n]``);
ranking streams use :class:`~repro.voting.rankings.Ranking` objects.

The ``insert`` / ``insert_many`` contract
-----------------------------------------

``insert`` is the reference semantics: one arrival, processed exactly as the paper's
pseudocode says, and it never changes behavior because a batched path exists.  Use it
when arrivals trickle in one at a time, when bit-for-bit reproducibility against a
recorded RNG schedule matters, or in adversarial-order experiments where the item
granularity is the point.

``insert_many(items)`` is the ingestion fast path.  The base-class default simply loops
over ``insert`` — so every algorithm supports it, exactly — while the heavy-hitter
sketches override it with vectorized implementations (geometric skip-ahead sampling,
numpy Carter–Wegman hashing, pre-aggregated counter merges).  Use it whenever items are
already available in chunks (file replay, benchmark streams, upstream network buffers):
it is the entry point that makes the paper's O(1)-amortized-update claim visible in
Python instead of being drowned by interpreter overhead.

Every override preserves three invariants:

* the algorithm's estimation guarantee (same estimator, same ε/ϕ/δ guarantees);
* the space accounting — batching is a *time* optimization only, ``space_bits()`` is
  charged identically;
* ``items_processed`` and report semantics match sequential consumption.

What an override may change is the RNG *consumption order* (a geometric skip draws one
uniform where m coin flips drew m) and, for the deterministic counter sketches, the
tie-breaking order of evictions (a pre-aggregated Misra–Gries decrement is applied once
per distinct id rather than interleaved).  Each override documents whether it is
**exactly** equal to sequential insertion or **statistically** equivalent (same output
distribution, identical guarantees).  The default loop implementation is always exact.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence

from repro.primitives.space import SpaceMeter


class StreamingAlgorithm(abc.ABC):
    """A one-pass algorithm over an insertion-only stream of integer items."""

    def __init__(self) -> None:
        self.space = SpaceMeter()
        self.items_processed = 0

    @abc.abstractmethod
    def insert(self, item: int) -> None:
        """Process one stream insertion."""

    def insert_many(self, items: Sequence[int]) -> None:
        """Process a batch of stream insertions (see the module docstring contract).

        This default loops over :meth:`insert` and is therefore exactly equivalent to
        sequential insertion; subclasses override it with vectorized fast paths.
        """
        # repro: lint-ignore[hot-path] -- reference semantics: the per-item loop IS the contract subclasses' vectorized overrides are property-tested against
        for item in items:
            self.insert(item)

    @abc.abstractmethod
    def report(self) -> Any:
        """Produce the algorithm's answer after the stream has been consumed."""

    def consume(self, stream: Iterable[int], batch_size: Optional[int] = None) -> "StreamingAlgorithm":
        """Insert every item of an iterable stream; returns ``self`` for chaining.

        With ``batch_size`` set, the stream is consumed in chunks through
        :meth:`insert_many` (the batched fast path); otherwise items are inserted one
        at a time (the reference path).
        """
        if batch_size is None:
            for item in stream:
                self.insert(item)
            return self
        from repro.primitives.batching import iter_chunks

        for chunk in iter_chunks(stream, batch_size):
            self.insert_many(chunk)
        return self

    def space_bits(self) -> int:
        """Current working-memory footprint in bits (see :class:`SpaceMeter`)."""
        self.refresh_space()
        return self.space.total_bits()

    def peak_space_bits(self) -> int:
        """Peak working-memory footprint in bits observed so far."""
        self.refresh_space()
        return self.space.peak_bits()

    def space_breakdown(self) -> Mapping[str, int]:
        """Per-component view of the current space usage."""
        self.refresh_space()
        return self.space.breakdown()

    def refresh_space(self) -> None:
        """Recompute the space meter from the live data structures.

        Subclasses that keep the meter up to date incrementally may leave this as a
        no-op; subclasses that prefer to recompute on demand override it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(items_processed={self.items_processed})"


class FrequencyEstimator(StreamingAlgorithm):
    """A streaming algorithm that can additionally estimate individual frequencies.

    All heavy-hitter baselines (Misra–Gries, Count-Min, CountSketch, Space-Saving,
    Lossy Counting, Sticky Sampling) satisfy this richer interface, as do the paper's
    heavy-hitter algorithms.
    """

    @abc.abstractmethod
    def estimate(self, item: int) -> float:
        """Estimate the absolute frequency of ``item`` in the stream seen so far."""

    def estimates(self, items: Iterable[int]) -> Dict[int, float]:
        """Estimate the frequency of several items at once."""
        return {item: self.estimate(item) for item in items}


class RankingStreamingAlgorithm(abc.ABC):
    """A one-pass algorithm over an insertion-only stream of rankings (votes).

    Used by the Borda and Maximin problems, whose stream items are total orders over the
    candidate set rather than single ids (paper Definitions 6–9).
    """

    def __init__(self) -> None:
        self.space = SpaceMeter()
        self.votes_processed = 0

    @abc.abstractmethod
    def insert(self, ranking: Any) -> None:
        """Process one vote (a ranking of all candidates)."""

    def insert_many(self, rankings: Iterable[Any]) -> None:
        """Process a batch of votes (default: exact sequential loop over insert)."""
        # repro: lint-ignore[hot-path] -- reference semantics: votes are rankings (small objects), no vectorized path exists for them yet
        for ranking in rankings:
            self.insert(ranking)

    @abc.abstractmethod
    def report(self) -> Any:
        """Produce the algorithm's answer after the stream has been consumed."""

    def consume(self, stream: Iterable[Any]) -> "RankingStreamingAlgorithm":
        for ranking in stream:
            self.insert(ranking)
        return self

    def space_bits(self) -> int:
        self.refresh_space()
        return self.space.total_bits()

    def peak_space_bits(self) -> int:
        self.refresh_space()
        return self.space.peak_bits()

    def space_breakdown(self) -> Mapping[str, int]:
        self.refresh_space()
        return self.space.breakdown()

    def refresh_space(self) -> None:
        """Recompute the space meter from the live data structures (see above)."""
