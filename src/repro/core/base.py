"""Common protocol for all streaming algorithms in the package.

The paper's model (Section 2.1) is a single pass over an insertion-only stream; the
algorithm keeps a small state between items, and at the end of the stream reports its
answer.  Every algorithm and baseline in this package therefore exposes the same three
operations:

* ``insert(item)`` — process one stream insertion,
* ``report()`` — produce the algorithm's answer (type depends on the problem),
* ``space_bits()`` — the number of bits of state the algorithm currently holds, as
  accounted by its :class:`~repro.primitives.space.SpaceMeter`.

Item streams use non-negative integer ids in ``[0, n)`` (the paper's universe ``[n]``);
ranking streams use :class:`~repro.voting.rankings.Ranking` objects.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Mapping

from repro.primitives.space import SpaceMeter


class StreamingAlgorithm(abc.ABC):
    """A one-pass algorithm over an insertion-only stream of integer items."""

    def __init__(self) -> None:
        self.space = SpaceMeter()
        self.items_processed = 0

    @abc.abstractmethod
    def insert(self, item: int) -> None:
        """Process one stream insertion."""

    @abc.abstractmethod
    def report(self) -> Any:
        """Produce the algorithm's answer after the stream has been consumed."""

    def consume(self, stream: Iterable[int]) -> "StreamingAlgorithm":
        """Insert every item of an iterable stream; returns ``self`` for chaining."""
        for item in stream:
            self.insert(item)
        return self

    def space_bits(self) -> int:
        """Current working-memory footprint in bits (see :class:`SpaceMeter`)."""
        self.refresh_space()
        return self.space.total_bits()

    def peak_space_bits(self) -> int:
        """Peak working-memory footprint in bits observed so far."""
        self.refresh_space()
        return self.space.peak_bits()

    def space_breakdown(self) -> Mapping[str, int]:
        """Per-component view of the current space usage."""
        self.refresh_space()
        return self.space.breakdown()

    def refresh_space(self) -> None:
        """Recompute the space meter from the live data structures.

        Subclasses that keep the meter up to date incrementally may leave this as a
        no-op; subclasses that prefer to recompute on demand override it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(items_processed={self.items_processed})"


class FrequencyEstimator(StreamingAlgorithm):
    """A streaming algorithm that can additionally estimate individual frequencies.

    All heavy-hitter baselines (Misra–Gries, Count-Min, CountSketch, Space-Saving,
    Lossy Counting, Sticky Sampling) satisfy this richer interface, as do the paper's
    heavy-hitter algorithms.
    """

    @abc.abstractmethod
    def estimate(self, item: int) -> float:
        """Estimate the absolute frequency of ``item`` in the stream seen so far."""

    def estimates(self, items: Iterable[int]) -> Dict[int, float]:
        """Estimate the frequency of several items at once."""
        return {item: self.estimate(item) for item in items}


class RankingStreamingAlgorithm(abc.ABC):
    """A one-pass algorithm over an insertion-only stream of rankings (votes).

    Used by the Borda and Maximin problems, whose stream items are total orders over the
    candidate set rather than single ids (paper Definitions 6–9).
    """

    def __init__(self) -> None:
        self.space = SpaceMeter()
        self.votes_processed = 0

    @abc.abstractmethod
    def insert(self, ranking: Any) -> None:
        """Process one vote (a ranking of all candidates)."""

    @abc.abstractmethod
    def report(self) -> Any:
        """Produce the algorithm's answer after the stream has been consumed."""

    def consume(self, stream: Iterable[Any]) -> "RankingStreamingAlgorithm":
        for ranking in stream:
            self.insert(ranking)
        return self

    def space_bits(self) -> int:
        self.refresh_space()
        return self.space.total_bits()

    def peak_space_bits(self) -> int:
        self.refresh_space()
        return self.space.peak_bits()

    def space_breakdown(self) -> Mapping[str, int]:
        self.refresh_space()
        return self.space.breakdown()

    def refresh_space(self) -> None:
        """Recompute the space meter from the live data structures (see above)."""
