"""Algorithm 3 / Theorem 4 — the ε-Minimum problem.

Space: ``O(ε⁻¹ log log(1/(εδ)) + log log m)`` bits — note there is *no* dependence on the
universe size ``n`` or on ``log ε⁻¹``; the whole point of the algorithm is to beat the
``Ω(ε⁻¹ log ε⁻¹)`` cost that running a heavy-hitters algorithm would incur.

The algorithm (paper Section 3.3) distinguishes four regimes, mirrored one-to-one in
:meth:`EpsilonMinimum.report`:

1. **Large universe** (``|U| ≥ 1/((1−δ)ε)``): a uniformly random item from the first
   ``1/((1−δ)ε)`` universe items has frequency below ``εm`` with probability ``1−δ``
   (there are at most ``1/ε`` items with frequency ``≥ εm``), so just output one.
2. **Some item never sampled into S1**: S1 is a ``Θ(log(1/(εδ))/ε)``-rate sample recorded
   only as a *bit vector* over the (small) universe.  Any item with frequency
   ``≥ εm·ln(6/δ)/ln(6/(εδ))`` lands in S1 with high probability, so an item absent from
   S1 is a valid answer.
3. **Few distinct items** (``≤ 1/(ε log(1/ε))``): S2 keeps exact per-item counters of a
   ``Θ(ε⁻²)``-rate sample, which is affordable because there are few of them; the
   minimum counter (rescaled) is the answer.
4. **Otherwise**: the minimum frequency is sandwiched in
   ``[εm/log(1/ε), εm·log(1/ε)]``, so S3 — a ``Θ(log⁶(1/(εδ))/ε)``-rate sample with
   per-item counters *truncated* at ``2 log⁷(2/(εδ))`` — preserves the minimum up to
   ``±εm`` while each counter needs only ``O(log log(1/(εδ)))`` bits.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.base import StreamingAlgorithm
from repro.core.results import MinimumResult
from repro.primitives.counters import TruncatedCounter
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler
from repro.primitives.space import bits_for_value


class EpsilonMinimum(StreamingAlgorithm):
    """Algorithm 3 of the paper: three nested samples S1/S2/S3 plus a small-universe shortcut."""

    def __init__(
        self,
        epsilon: float,
        universe_size: int,
        stream_length: int,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive (use the unknown-length wrapper otherwise)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")

        self.epsilon = epsilon
        self.delta = delta
        self.universe_size = universe_size
        self.stream_length = stream_length
        self._rng = rng if rng is not None else RandomSource()

        # Line 14: the large-universe shortcut threshold.
        self.large_universe_threshold = 1.0 / ((1.0 - delta) * epsilon)
        self.large_universe = universe_size >= self.large_universe_threshold

        # Line 2: the three sample-size parameters.
        self.l1 = math.log(6.0 / (epsilon * delta)) / epsilon
        self.l2 = math.log(6.0 / delta) / (epsilon * epsilon)
        self.l3 = (math.log(6.0 / (delta * epsilon)) ** 6) / epsilon
        # Line 3: the corresponding sampling probabilities (capped at 1).
        self.p1 = min(1.0, 6.0 * self.l1 / stream_length)
        self.p2 = min(1.0, 6.0 * self.l2 / stream_length)
        self.p3 = min(1.0, 6.0 * self.l3 / stream_length)
        self._sampler1 = CoinFlipSampler(self.p1, rng=self._rng.spawn(1))
        self._sampler2 = CoinFlipSampler(self.p2, rng=self._rng.spawn(2))
        self._sampler3 = CoinFlipSampler(self.p3, rng=self._rng.spawn(3))

        # Line 5: B1 — a bit vector over the universe recording membership in S1.
        # Only needed (and only charged) in the small-universe regime.
        self.s1_seen: set = set()
        # Line 10: S2 — exact counters, maintained only while the number of distinct
        # items stays below the threshold.
        self.distinct_threshold = 1.0 / (epsilon * max(math.log(1.0 / epsilon), 1.0))
        self.s2_counts: Dict[int, int] = {}
        self.s2_sample_size = 0
        self.s2_abandoned = False
        # Line 11: S3 — counters truncated at 2 log^7(2/(eps*delta)).
        self.truncation_cap = max(
            2, int(math.ceil(2.0 * (math.log(2.0 / (epsilon * delta)) ** 7)))
        )
        self.s3_counts: Dict[int, TruncatedCounter] = {}
        self.s3_sample_size = 0

        # Exact distinct-item tracking; affordable because the interesting regime has
        # |U| = O(1/eps) (in the large-universe regime the algorithm never looks at it).
        self.distinct_seen: set = set()

    # -- stream interface ---------------------------------------------------------------

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        if self.large_universe:
            # The shortcut answer does not look at the stream at all.
            return
        self.distinct_seen.add(item)
        # Line 8: S1 membership bit vector.
        if self._sampler1.decide():
            self.s1_seen.add(item)
        # Lines 9-10: S2 exact counters while the distinct count is small.
        if not self.s2_abandoned:
            if len(self.distinct_seen) <= self.distinct_threshold:
                if self._sampler2.decide():
                    self.s2_sample_size += 1
                    self.s2_counts[item] = self.s2_counts.get(item, 0) + 1
            else:
                # Too many distinct items: S2 would exceed its budget, abandon it.
                self.s2_abandoned = True
                self.s2_counts.clear()
        # Line 11: S3 truncated counters.
        if self._sampler3.decide():
            self.s3_sample_size += 1
            counter = self.s3_counts.get(item)
            if counter is None:
                counter = TruncatedCounter(cap=self.truncation_cap)
                self.s3_counts[item] = counter
            counter.increment()

    # -- queries ------------------------------------------------------------------------

    def report(self) -> MinimumResult:
        """Lines 13-20 of Algorithm 3, in order."""
        # Line 14-15: large universe — answer with a random item among the first
        # 1/((1-delta) eps) universe items.
        if self.large_universe:
            bound = min(self.universe_size, int(self.large_universe_threshold))
            item = self._rng.randint(0, max(0, bound - 1))
            return self._result(item, estimated_frequency=0.0)
        # Line 16-17: some universe item never made it into S1.
        missing = [item for item in range(self.universe_size) if item not in self.s1_seen]
        if missing:
            return self._result(missing[0], estimated_frequency=0.0)
        # Line 18-19: few distinct items — S2's exact counters decide.
        if not self.s2_abandoned and len(self.distinct_seen) <= self.distinct_threshold:
            item, count = min(
                self.s2_counts.items(), key=lambda pair: (pair[1], pair[0])
            )
            scale = self.items_processed / max(1, self.s2_sample_size)
            return self._result(item, estimated_frequency=count * scale)
        # Line 20: S3's truncated counters decide.
        item, counter = min(
            self.s3_counts.items(), key=lambda pair: (int(pair[1]), pair[0])
        )
        scale = self.items_processed / max(1, self.s3_sample_size)
        return self._result(item, estimated_frequency=int(counter) * scale)

    def _result(self, item: int, estimated_frequency: float) -> MinimumResult:
        return MinimumResult(
            item=item,
            estimated_frequency=estimated_frequency,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
        )

    # -- space accounting ----------------------------------------------------------------

    def refresh_space(self) -> None:
        if self.large_universe:
            # The shortcut stores nothing beyond the answer-range bound, O(log(1/eps)).
            self.space.set_component("shortcut", bits_for_value(int(self.large_universe_threshold)))
            return
        # Sampler states (Lemma 1): O(log log m) each.
        self.space.set_component(
            "samplers",
            self._sampler1.space_bits()
            + self._sampler2.space_bits()
            + self._sampler3.space_bits(),
        )
        # B1: one bit per universe item, |U| = O(1/eps) in this regime.
        self.space.set_component("B1", self.universe_size)
        # Distinct-item bit vector (same regime, same O(1/eps) bits).
        self.space.set_component("distinct", self.universe_size)
        # S2: ids of O(log 1/eps) bits and counters of O(log l2) bits, only while alive.
        if not self.s2_abandoned:
            id_bits = bits_for_value(self.universe_size - 1)
            count_bits = bits_for_value(max(1, int(11 * self.l2)))
            self.space.set_component("S2", len(self.s2_counts) * (id_bits + count_bits))
        else:
            self.space.set_component("S2", 0)
        # S3: one truncated counter per universe item seen — O(log log(1/(eps delta))) bits each.
        cap_bits = bits_for_value(self.truncation_cap)
        id_bits = bits_for_value(self.universe_size - 1)
        self.space.set_component("S3", len(self.s3_counts) * (id_bits + cap_bits))
