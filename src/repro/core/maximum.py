"""Theorem 3 — the ε-Maximum problem (approximate ℓ∞ norm / plurality winner).

Space: ``O(min(ε⁻¹, n)(log ε⁻¹ + log log δ⁻¹) + log n + log log m)`` bits.

The algorithm is Algorithm 1 with one change (paper Section 3.2): instead of the table
``T2`` of the top ``1/ϕ`` ids, only the single id of the item currently holding the
largest counter in ``T1`` is remembered.  This both answers the ε-Maximum question
("what is the maximum frequency, up to ±εm?") and the plurality-winner question
("which item achieves it?"), resolving IITK 2006 Open Question 3 for ℓ1-heavy hitters.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.baselines.misra_gries import MisraGriesTable
from repro.core.base import FrequencyEstimator
from repro.core.results import MaximumResult
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler
from repro.primitives.space import bits_for_value


class EpsilonMaximum(FrequencyEstimator):
    """Theorem 3: Algorithm 1 tweaked to remember only the arg-max id."""

    def __init__(
        self,
        epsilon: float,
        universe_size: int,
        stream_length: int,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive (use the unknown-length wrapper otherwise)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")

        self.epsilon = epsilon
        self.delta = delta
        self.universe_size = universe_size
        self.stream_length = stream_length
        rng = rng if rng is not None else RandomSource()

        self._sampling_epsilon = epsilon / 2.0
        self.target_sample_size = int(
            math.ceil(6.0 * math.log(6.0 / delta) / (self._sampling_epsilon ** 2))
        )
        probability = min(1.0, 6.0 * self.target_sample_size / stream_length)
        self._sampler = CoinFlipSampler(probability, rng=rng.spawn(1))
        self.sample_size = 0

        self.hash_range = int(math.ceil(10.0 * (self.target_sample_size ** 2) / delta))
        family = UniversalHashFamily(universe_size, self.hash_range, rng=rng.spawn(2))
        self.hash_function: UniversalHashFunction = family.draw()

        # The Misra–Gries table needs only min(2/eps, n) + 1 counters: with fewer than
        # 1/eps distinct items the table is exact anyway.
        self.table_capacity = min(int(math.ceil(2.0 / epsilon)) + 1, universe_size + 1)
        self.t1 = MisraGriesTable(num_counters=self.table_capacity)

        # The single remembered id (the paper's replacement for table T2).
        self.best_item: Optional[int] = None
        self.best_hash: Optional[int] = None

    # -- stream interface ---------------------------------------------------------------

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        if not self._sampler.decide():
            return
        self.sample_size += 1
        hashed = self.hash_function(item)
        self.t1.update(hashed)
        self._update_best(hashed, item)

    def _update_best(self, hashed: int, item: int) -> None:
        """Remember the actual id of the hash currently holding the largest counter."""
        if self.best_hash is None:
            self.best_item, self.best_hash = item, hashed
            return
        current_best_value = self.t1.get(self.best_hash)
        if self.t1.get(hashed) >= current_best_value:
            self.best_item, self.best_hash = item, hashed

    # -- queries ------------------------------------------------------------------------

    def _scale(self) -> float:
        if self.sample_size == 0:
            return 0.0
        return self.items_processed / self.sample_size

    def estimate(self, item: int) -> float:
        return self.t1.get(self.hash_function(item)) * self._scale()

    def report(self) -> MaximumResult:
        """The estimated maximum frequency and an item achieving it."""
        if self.best_item is None or self.best_hash is None:
            return MaximumResult(
                item=0,
                estimated_frequency=0.0,
                stream_length=self.items_processed,
                epsilon=self.epsilon,
            )
        # The remembered id may have drifted from the true argmax of T1 if its hash was
        # displaced; re-check against the table's current maximum value.
        top_hash = self.t1.top_keys(1)
        best_hash = self.best_hash
        if top_hash and self.t1.get(top_hash[0]) > self.t1.get(best_hash):
            best_hash = top_hash[0]
        estimated = self.t1.get(self.best_hash) * self._scale()
        return MaximumResult(
            item=self.best_item,
            estimated_frequency=estimated,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
        )

    # -- space accounting ----------------------------------------------------------------

    def refresh_space(self) -> None:
        self.space.set_component("sampler", self._sampler.space_bits())
        self.space.set_component("hash_function", self.hash_function.description_bits())
        key_bits = bits_for_value(self.hash_range - 1)
        value_bits = bits_for_value(max(1, 11 * self.target_sample_size))
        self.space.set_component("T1", self.t1.space_bits(key_bits, value_bits))
        # A single id of log n bits replaces the whole T2 table.
        self.space.set_component("best_id", bits_for_value(self.universe_size - 1))
