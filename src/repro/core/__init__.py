"""The paper's streaming algorithms (upper bounds of Table 1).

This subpackage contains the reproduction of every upper-bound result in the paper:

* :mod:`repro.core.heavy_hitters_simple` — Algorithm 1 / Theorem 1, the "simpler,
  near-optimal" (ε,ϕ)-List heavy hitters algorithm.
* :mod:`repro.core.heavy_hitters_optimal` — Algorithm 2 / Theorem 2, the space-optimal
  algorithm built from accelerated counters.
* :mod:`repro.core.maximum` — Theorem 3, the ε-Maximum (approximate ℓ∞ / plurality
  winner) algorithm.
* :mod:`repro.core.minimum` — Algorithm 3 / Theorem 4, the ε-Minimum (approximate veto
  winner) algorithm.
* :mod:`repro.core.borda` — Theorem 5, (ε,ϕ)-List Borda.
* :mod:`repro.core.maximin` — Theorem 6, (ε,ϕ)-List Maximin.
* :mod:`repro.core.unknown_length` — Theorems 7 and 8, the doubling/restart wrappers
  that remove the assumption that the stream length ``m`` is known in advance.

All algorithms share the small protocol defined in :mod:`repro.core.base`
(``insert`` / ``report`` / ``space_bits``) and return typed results from
:mod:`repro.core.results`.
"""

from repro.core.base import StreamingAlgorithm, FrequencyEstimator, RankingStreamingAlgorithm
from repro.core.results import (
    HeavyHitterResult,
    HeavyHittersReport,
    MaximumResult,
    MinimumResult,
    ScoreReport,
)
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.core.borda import ListBorda
from repro.core.maximin import ListMaximin
from repro.core.unknown_length import (
    UnknownLengthHeavyHitters,
    UnknownLengthMaximum,
    UnknownLengthWrapper,
)

__all__ = [
    "StreamingAlgorithm",
    "FrequencyEstimator",
    "RankingStreamingAlgorithm",
    "HeavyHitterResult",
    "HeavyHittersReport",
    "MaximumResult",
    "MinimumResult",
    "ScoreReport",
    "SimpleListHeavyHitters",
    "OptimalListHeavyHitters",
    "EpsilonMaximum",
    "EpsilonMinimum",
    "ListBorda",
    "ListMaximin",
    "UnknownLengthHeavyHitters",
    "UnknownLengthMaximum",
    "UnknownLengthWrapper",
]
