"""Theorems 7 and 8 — handling streams whose length is not known in advance.

Every algorithm in this package is parameterized by the stream length ``m`` (it fixes
the sampling rate).  When ``m`` is unknown, the paper's recipe (Section 3.5) is:

* keep a **Morris counter** to track the current stream position up to a constant
  factor, using ``O(log log m)`` bits;
* maintain a geometric sequence of **length guesses** ``m₀ < m₁ < m₂ < ...``; at any
  point in time at most two instances of the base algorithm are alive — the *older*
  instance, parameterized for the current guess, and a *younger* instance, parameterized
  for the next guess, started early so that by the time the older instance's guess is
  exceeded the younger one has already seen all but an ``ε`` fraction of the stream;
* when the (approximate) position crosses a guess boundary, retire the oldest instance,
  free its space, and start a new instance for the following guess;
* report from the oldest live instance.

:class:`UnknownLengthWrapper` implements this generically for any algorithm built by a
``factory(stream_length_hint)`` callable.  :class:`UnknownLengthHeavyHitters` and
:class:`UnknownLengthMaximum` are the two concrete instantiations Theorem 7 names;
Theorem 8 notes the same wrapper works for ε-Minimum, Borda and Maximin, which
:func:`unknown_length_minimum`, :func:`unknown_length_borda` and
:func:`unknown_length_maximin` provide.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional

from repro.core.borda import ListBorda
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximin import ListMaximin
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.core.results import HeavyHittersReport, MaximumResult
from repro.primitives.morris import MorrisCounter
from repro.primitives.rng import RandomSource


class UnknownLengthWrapper:
    """Doubling/restart wrapper around a length-parameterized streaming algorithm.

    ``factory(stream_length_hint)`` must build a fresh instance of the base algorithm
    tuned for streams of (at most) ``stream_length_hint`` items.  ``growth_factor``
    controls how aggressively the guesses grow; the paper uses ``1/ε`` (so at most an
    ``ε`` fraction of the stream is missed by the reporting instance), and that is the
    default, capped to keep the number of restarts sensible on short test streams.
    """

    def __init__(
        self,
        factory: Callable[[int], Any],
        epsilon: float,
        initial_guess: Optional[int] = None,
        growth_factor: Optional[float] = None,
        rng: Optional[RandomSource] = None,
        use_morris_counter: bool = True,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.factory = factory
        self.epsilon = epsilon
        self.growth_factor = (
            growth_factor
            if growth_factor is not None
            else max(2.0, min(1.0 / epsilon, 16.0))
        )
        # The paper starts guessing at 1/eps^2 (shorter streams are handled by the
        # known-length algorithm directly, since O(1/eps^2) items fit in the sample).
        self.initial_guess = (
            initial_guess
            if initial_guess is not None
            else max(16, int(math.ceil(1.0 / (epsilon * epsilon))))
        )
        rng = rng if rng is not None else RandomSource()
        self.use_morris_counter = use_morris_counter
        self.morris = MorrisCounter(rng=rng.spawn(1), repetitions=5)
        self.items_processed = 0  # exact, used only for reporting diagnostics
        self.restarts = 0

        # The two live instances: (horizon, algorithm). instances[0] is the older.
        first_horizon = self.initial_guess
        second_horizon = int(math.ceil(first_horizon * self.growth_factor))
        self.instances: List[List[Any]] = [
            [first_horizon, factory(first_horizon)],
            [second_horizon, factory(second_horizon)],
        ]

    # -- stream interface ---------------------------------------------------------------

    def _estimated_position(self) -> float:
        if self.use_morris_counter:
            return self.morris.estimate()
        return float(self.items_processed)

    def insert(self, item: Any) -> None:
        self.items_processed += 1
        if self.use_morris_counter:
            self.morris.increment()
        # Retire the older instance once the stream has outgrown its horizon.
        self._retire_outgrown()
        for _horizon, algorithm in self.instances:
            algorithm.insert(item)

    def _retire_outgrown(self) -> None:
        """Retire instances whose horizon the (estimated) position has passed."""
        while self._estimated_position() > self.instances[0][0] and len(self.instances) >= 2:
            self.instances.pop(0)
            next_horizon = int(math.ceil(self.instances[-1][0] * self.growth_factor))
            self.instances.append([next_horizon, self.factory(next_horizon)])
            self.restarts += 1

    def insert_many(self, items: Any) -> None:
        """Batched ingestion that splits batches exactly at restart boundaries.

        The doubling/restart schedule must see the same boundaries as per-item
        insertion — a restart falling silently mid-batch would hand part of the batch
        to an instance that should already have been retired.  The batch is therefore
        cut into maximal runs that provably cannot cross a boundary, and each run is
        fed to the live instances through their own ``insert_many`` fast path:

        * with the **Morris counter** (the paper's O(log log m)-bit position track),
          the estimated position only moves when an exponent bumps, so
          :meth:`~repro.primitives.morris.MorrisCounter.advance_until_change` skips
          ahead geometrically to the next bump (distributionally identical to
          per-item increments), the run before the bump is batch-inserted, and the
          bump item itself is inserted after the retirement check it may trigger —
          the exact order :meth:`insert` uses;
        * with **exact counting**, the distance to the current horizon is known, so
          runs are cut deterministically at it.

        Equivalent to sequential :meth:`insert` up to the inner algorithms' own
        ``insert_many`` contracts (same restart schedule in distribution; the Morris
        RNG is consumed in skip-ahead order).
        """
        if not hasattr(items, "__getitem__"):
            items = list(items)
        total = len(items)
        position = 0
        while position < total:
            remaining = total - position
            if self.use_morris_counter:
                steps, changed = self.morris.advance_until_change(remaining)
                if not changed:
                    # No estimate movement in the rest of the batch: no boundary.
                    self._insert_run(items[position:position + remaining])
                    self.items_processed += remaining
                    position += remaining
                    continue
                run = steps - 1
                if run > 0:
                    # Items before the bump see an unchanged estimate (no boundary).
                    self._insert_run(items[position:position + run])
                    self.items_processed += run
                    position += run
                # The bump item: retirement first, then insertion, as insert() does.
                self.items_processed += 1
                self._retire_outgrown()
                self._insert_run(items[position:position + 1])
                position += 1
            else:
                gap = self.instances[0][0] - self.items_processed
                run = min(remaining, max(gap, 0))
                if run == 0:
                    self.items_processed += 1
                    self._retire_outgrown()
                    self._insert_run(items[position:position + 1])
                    position += 1
                else:
                    self._insert_run(items[position:position + run])
                    self.items_processed += run
                    position += run

    def _insert_run(self, run: Any) -> None:
        """Feed one boundary-free run to every live instance's batched fast path."""
        for _horizon, algorithm in self.instances:
            insert_many = getattr(algorithm, "insert_many", None)
            if insert_many is not None:
                insert_many(run)
            else:  # pragma: no cover - all current algorithms expose insert_many
                for item in run:
                    algorithm.insert(item)

    def consume(self, stream, batch_size: Optional[int] = None) -> "UnknownLengthWrapper":
        """Insert a whole stream; ``batch_size`` switches to chunked :meth:`insert_many`.

        Chunked consumption is for integer item streams (the chunker materializes
        numpy batches); ranking streams should consume per item.
        """
        if batch_size is None:
            for item in stream:
                self.insert(item)
            return self
        from repro.primitives.batching import iter_chunks

        for chunk in iter_chunks(stream, batch_size):
            self.insert_many(chunk)
        return self

    # -- queries ------------------------------------------------------------------------

    @property
    def reporting_instance(self) -> Any:
        """The oldest live instance — the one whose answer is returned."""
        return self.instances[0][1]

    def report(self) -> Any:
        return self.reporting_instance.report()

    def space_bits(self) -> int:
        total = self.morris.space_bits() if self.use_morris_counter else 0
        for _horizon, algorithm in self.instances:
            total += algorithm.space_bits()
        return total

    def space_breakdown(self) -> dict:
        breakdown = {"morris": self.morris.space_bits() if self.use_morris_counter else 0}
        for index, (horizon, algorithm) in enumerate(self.instances):
            breakdown[f"instance_{index}(horizon={horizon})"] = algorithm.space_bits()
        return breakdown


class UnknownLengthHeavyHitters(UnknownLengthWrapper):
    """Theorem 7 instantiated for (ε,ϕ)-List heavy hitters (Algorithm 1 inside)."""

    def __init__(
        self,
        epsilon: float,
        phi: float,
        universe_size: int,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
        **wrapper_kwargs: Any,
    ) -> None:
        rng = rng if rng is not None else RandomSource()
        self.phi = phi
        self.universe_size = universe_size

        def factory(stream_length_hint: int) -> SimpleListHeavyHitters:
            return SimpleListHeavyHitters(
                epsilon=epsilon,
                phi=phi,
                universe_size=universe_size,
                stream_length=stream_length_hint,
                delta=delta,
                rng=rng.spawn(stream_length_hint),
            )

        super().__init__(factory=factory, epsilon=epsilon, rng=rng, **wrapper_kwargs)

    def report(self) -> HeavyHittersReport:
        report = self.reporting_instance.report()
        # Rescale the stream length to the exact number of items the wrapper has seen
        # (the inner instance only saw the suffix it was alive for).
        return HeavyHittersReport(
            items=report.items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=self.phi,
        )


class UnknownLengthMaximum(UnknownLengthWrapper):
    """Theorem 7 instantiated for ε-Maximum."""

    def __init__(
        self,
        epsilon: float,
        universe_size: int,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
        **wrapper_kwargs: Any,
    ) -> None:
        rng = rng if rng is not None else RandomSource()
        self.universe_size = universe_size

        def factory(stream_length_hint: int) -> EpsilonMaximum:
            return EpsilonMaximum(
                epsilon=epsilon,
                universe_size=universe_size,
                stream_length=stream_length_hint,
                delta=delta,
                rng=rng.spawn(stream_length_hint),
            )

        super().__init__(factory=factory, epsilon=epsilon, rng=rng, **wrapper_kwargs)

    def report(self) -> MaximumResult:
        result = self.reporting_instance.report()
        return MaximumResult(
            item=result.item,
            estimated_frequency=result.estimated_frequency,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
        )


def unknown_length_minimum(
    epsilon: float,
    universe_size: int,
    delta: float = 0.1,
    rng: Optional[RandomSource] = None,
    **wrapper_kwargs: Any,
) -> UnknownLengthWrapper:
    """Theorem 8 instantiated for ε-Minimum."""
    rng = rng if rng is not None else RandomSource()

    def factory(stream_length_hint: int) -> EpsilonMinimum:
        return EpsilonMinimum(
            epsilon=epsilon,
            universe_size=universe_size,
            stream_length=stream_length_hint,
            delta=delta,
            rng=rng.spawn(stream_length_hint),
        )

    return UnknownLengthWrapper(factory=factory, epsilon=epsilon, rng=rng, **wrapper_kwargs)


def unknown_length_borda(
    epsilon: float,
    num_candidates: int,
    phi: Optional[float] = None,
    delta: float = 0.1,
    rng: Optional[RandomSource] = None,
    **wrapper_kwargs: Any,
) -> UnknownLengthWrapper:
    """Theorem 8 instantiated for (ε,ϕ)-List Borda."""
    rng = rng if rng is not None else RandomSource()

    def factory(stream_length_hint: int) -> ListBorda:
        return ListBorda(
            epsilon=epsilon,
            num_candidates=num_candidates,
            stream_length=stream_length_hint,
            phi=phi,
            delta=delta,
            rng=rng.spawn(stream_length_hint),
        )

    return UnknownLengthWrapper(factory=factory, epsilon=epsilon, rng=rng, **wrapper_kwargs)


def unknown_length_maximin(
    epsilon: float,
    num_candidates: int,
    phi: Optional[float] = None,
    delta: float = 0.1,
    rng: Optional[RandomSource] = None,
    **wrapper_kwargs: Any,
) -> UnknownLengthWrapper:
    """Theorem 8 instantiated for (ε,ϕ)-List Maximin."""
    rng = rng if rng is not None else RandomSource()

    def factory(stream_length_hint: int) -> ListMaximin:
        return ListMaximin(
            epsilon=epsilon,
            num_candidates=num_candidates,
            stream_length=stream_length_hint,
            phi=phi,
            delta=delta,
            rng=rng.spawn(stream_length_hint),
        )

    return UnknownLengthWrapper(factory=factory, epsilon=epsilon, rng=rng, **wrapper_kwargs)
