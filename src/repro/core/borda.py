"""Theorem 5 — (ε,ϕ)-List Borda and ε-Borda.

Space: ``O(n (log n + log ε⁻¹ + log log δ⁻¹) + log log m)`` bits.

The algorithm (paper Section 3.4) is sampling plus exact counting: sample
``ℓ = 6 ε⁻² log(6n/δ)`` votes; for each sampled vote, add to each candidate's counter
the number of candidates it beats in that vote (its Borda contribution).  A Chernoff
bound over the ``n`` candidates shows every rescaled Borda score is within ``±εmn`` of
the truth with probability ``1−δ``.  Reporting every candidate whose rescaled score
exceeds ``(ϕ − ε/2)·m·n`` solves the List variant; reporting the maximum solves
ε-Borda.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.base import RankingStreamingAlgorithm
from repro.core.results import ScoreReport
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler
from repro.primitives.space import bits_for_value
from repro.voting.rankings import Ranking


class ListBorda(RankingStreamingAlgorithm):
    """Theorem 5: sampled exact Borda counting."""

    def __init__(
        self,
        epsilon: float,
        num_candidates: int,
        stream_length: int,
        phi: Optional[float] = None,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive (use the unknown-length wrapper otherwise)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if phi is not None and not epsilon < phi <= 1.0:
            raise ValueError("phi must satisfy epsilon < phi <= 1")

        self.epsilon = epsilon
        self.phi = phi
        self.delta = delta
        self.num_candidates = num_candidates
        self.stream_length = stream_length
        rng = rng if rng is not None else RandomSource()

        # Theorem 5: l = 6 eps^-2 log(6 n / delta) sampled votes (eps/2 budget for the
        # sampling error so the end-to-end +-eps*m*n guarantee holds after rescaling).
        effective_epsilon = epsilon / 2.0
        self.target_sample_size = int(
            math.ceil(6.0 * math.log(6.0 * num_candidates / delta) / (effective_epsilon ** 2))
        )
        probability = min(1.0, 6.0 * self.target_sample_size / stream_length)
        self._sampler = CoinFlipSampler(probability, rng=rng.spawn(1))
        self.sample_size = 0

        # One exact Borda counter per candidate over the sampled votes.
        self.borda_counts: Dict[int, int] = {candidate: 0 for candidate in range(num_candidates)}

    # -- stream interface ---------------------------------------------------------------

    def insert(self, ranking: Ranking) -> None:
        if ranking.num_candidates != self.num_candidates:
            raise ValueError(
                f"vote ranks {ranking.num_candidates} candidates, expected {self.num_candidates}"
            )
        self.votes_processed += 1
        if not self._sampler.decide():
            return
        self.sample_size += 1
        for candidate in range(self.num_candidates):
            self.borda_counts[candidate] += ranking.candidates_beaten_by(candidate)

    # -- queries ------------------------------------------------------------------------

    def _scale(self) -> float:
        if self.sample_size == 0:
            return 0.0
        return self.votes_processed / self.sample_size

    def estimated_scores(self) -> Dict[int, float]:
        """Estimated Borda score of every candidate (absolute, for the whole stream)."""
        scale = self._scale()
        return {candidate: count * scale for candidate, count in self.borda_counts.items()}

    def report(self) -> ScoreReport:
        scores = self.estimated_scores()
        heavy = []
        if self.phi is not None:
            threshold = (self.phi - self.epsilon / 2.0) * self.votes_processed * self.num_candidates
            heavy = sorted(
                candidate for candidate, score in scores.items() if score > threshold
            )
        return ScoreReport(
            scores=scores,
            stream_length=self.votes_processed,
            epsilon=self.epsilon,
            phi=self.phi,
            heavy_items=heavy,
        )

    # -- space accounting ----------------------------------------------------------------

    def refresh_space(self) -> None:
        self.space.set_component("sampler", self._sampler.space_bits())
        # n counters, each at most (sample size) * (n - 1): O(log(l n)) bits per counter.
        counter_bits = bits_for_value(
            max(1, 11 * self.target_sample_size * max(1, self.num_candidates - 1))
        )
        self.space.set_component("borda_counters", self.num_candidates * counter_bits)
