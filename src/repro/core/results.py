"""Typed result objects returned by the algorithms' ``report()`` methods.

Keeping the results as small frozen dataclasses (rather than bare tuples or dicts) makes
the guarantees of Definition 1 and Definitions 3–9 easy to check in tests: a
:class:`HeavyHittersReport` knows which items were returned and with what estimated
frequencies, and offers the convenience predicates the paper's correctness statement is
phrased in terms of.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class HeavyHitterResult:
    """A single reported heavy hitter: the item id and its estimated frequency."""

    item: int
    estimated_frequency: float

    def estimated_relative_frequency(self, stream_length: int) -> float:
        """The estimate as a fraction of the stream length."""
        if stream_length <= 0:
            raise ValueError("stream_length must be positive")
        return self.estimated_frequency / stream_length


@dataclass
class HeavyHittersReport:
    """The output of an (ε,ϕ)-List heavy hitters algorithm (paper Definition 3).

    ``items`` maps each reported item to its estimated absolute frequency.
    ``stream_length`` is the number of stream insertions the algorithm processed (or the
    algorithm's estimate of it, for unknown-length variants).

    >>> report = HeavyHittersReport(items={7: 300.0, 2: 120.0}, stream_length=1000,
    ...                             epsilon=0.01, phi=0.1)
    >>> report.reported_items()
    [7, 2]
    >>> 7 in report, report.estimated_frequency(2)
    (True, 120.0)
    >>> len(report)
    2
    """

    items: Dict[int, float]
    stream_length: int
    epsilon: float
    phi: float

    def __contains__(self, item: int) -> bool:
        return item in self.items

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[int]:
        return iter(self.items)

    def reported_items(self) -> List[int]:
        """Item ids sorted by decreasing estimated frequency."""
        return sorted(self.items, key=lambda item: (-self.items[item], item))

    def estimated_frequency(self, item: int) -> Optional[float]:
        """The estimate for a reported item, or ``None`` if it was not reported."""
        return self.items.get(item)

    def as_results(self) -> List[HeavyHitterResult]:
        return [HeavyHitterResult(item, self.items[item]) for item in self.reported_items()]

    # -- combine (sharded / distributed runs) ----------------------------------------

    def merge(self, other: "HeavyHittersReport", rethreshold: bool = True) -> "HeavyHittersReport":
        """Combine two shard reports over disjoint sub-streams into one report.

        Both reports must carry the same (ε, ϕ) — the guarantee of Definition 3 is not
        comparable across parameterizations, so mismatches raise instead of silently
        degrading it.  Estimates of items reported by both sides add (under
        hash-partitioned routing the supports are disjoint, so at most one side
        reports any item; summing also covers replicated runs), and the stream length
        becomes the combined length.

        Per-shard reports were filtered against *per-shard* thresholds (a fraction of
        ``m_shard < m``), so a merged report can contain items that are heavy in
        their shard but light globally.  Recall is never hurt by the merge itself
        (every globally ϕ-heavy item is ϕ-heavy in the one shard that received it);
        ``rethreshold=True`` (the default) restores precision by dropping items whose
        combined estimate is at most ``(ϕ − ε)·m`` — the *loosest* filter Definition 1
        permits, chosen so that it cannot evict a ϕ-heavy item from any sketch whose
        estimates are within ±εm (an underestimating sketch like Misra–Gries reports
        a ϕ-heavy item with estimate > ``(ϕ − ε)·m``, which a tighter cutoff such as
        ``(ϕ − ε/2)·m`` could wrongly discard).  Items that survive with an
        accurate-or-under estimate are guaranteed not ``(ϕ − ε)``-light;
        overestimating sketches may keep items up to their εm overshoot below the
        boundary.  Prefer merging *sketches* and reporting once when possible — that
        is what :class:`repro.sharding.ShardedExecutor` does — and merge reports when
        only reports survived (e.g. returned by remote workers).

        >>> left = HeavyHittersReport(items={7: 300.0}, stream_length=1000,
        ...                           epsilon=0.01, phi=0.1)
        >>> right = HeavyHittersReport(items={2: 50.0}, stream_length=1000,
        ...                            epsilon=0.01, phi=0.1)
        >>> merged = left.merge(right)
        >>> merged.stream_length, merged.reported_items()
        (2000, [7])
        >>> left.merge(right, rethreshold=False).reported_items()
        [7, 2]
        """
        if not isinstance(other, HeavyHittersReport):
            raise TypeError(f"cannot merge HeavyHittersReport with {type(other).__name__}")
        if abs(other.epsilon - self.epsilon) > 1e-12 or abs(other.phi - self.phi) > 1e-12:
            raise ValueError(
                "cannot merge reports with different guarantees: "
                f"(epsilon={self.epsilon}, phi={self.phi}) vs "
                f"(epsilon={other.epsilon}, phi={other.phi})"
            )
        items = dict(self.items)
        for item, estimate in other.items.items():
            items[item] = items.get(item, 0.0) + estimate
        stream_length = self.stream_length + other.stream_length
        if rethreshold:
            threshold = (self.phi - self.epsilon) * stream_length
            items = {item: estimate for item, estimate in items.items() if estimate > threshold}
        return HeavyHittersReport(
            items=items,
            stream_length=stream_length,
            epsilon=self.epsilon,
            phi=self.phi,
        )

    @classmethod
    def quorum_merge(
        cls,
        reports: List["HeavyHittersReport"],
        quorum: Optional[int] = None,
    ) -> "HeavyHittersReport":
        """Combine reports from R replicas over the **same** stream prefix.

        Unlike :meth:`merge` (which combines shards over *disjoint* sub-streams,
        adding estimates and lengths), replicas all saw the identical stream:
        an item belongs in the combined answer iff at least ``quorum`` replicas
        reported it (default: a majority, ``len(reports) // 2 + 1``), and its
        estimate is the **median** of the reporting replicas' estimates.  Each
        replica errs with probability δ independently, so a quorum answer is
        wrong only when ⌈R/2⌉ replicas fail on the same item — failure
        probability roughly δ^⌈R/2⌉ — and the median estimate is within ±εm
        whenever a majority of the reporting estimates are.

        All reports must carry the same (ε, ϕ) and the same ``stream_length``;
        a length mismatch means the replicas diverged (they no longer hold the
        same prefix) and quorum semantics would be meaningless, so it raises.

        >>> a = HeavyHittersReport(items={7: 300.0, 2: 120.0}, stream_length=1000,
        ...                        epsilon=0.01, phi=0.1)
        >>> b = HeavyHittersReport(items={7: 302.0, 2: 118.0}, stream_length=1000,
        ...                        epsilon=0.01, phi=0.1)
        >>> c = HeavyHittersReport(items={7: 310.0, 9: 101.0}, stream_length=1000,
        ...                        epsilon=0.01, phi=0.1)
        >>> merged = HeavyHittersReport.quorum_merge([a, b, c])
        >>> merged.reported_items()
        [7, 2]
        >>> merged.estimated_frequency(7), merged.estimated_frequency(2)
        (302.0, 119.0)
        >>> HeavyHittersReport.quorum_merge([a, b, c], quorum=1).reported_items()
        [7, 2, 9]
        """
        if not reports:
            raise ValueError("quorum_merge needs at least one report")
        if quorum is None:
            quorum = len(reports) // 2 + 1
        if not 1 <= quorum <= len(reports):
            raise ValueError(
                f"quorum must be in [1, {len(reports)}], got {quorum}"
            )
        first = reports[0]
        for report in reports[1:]:
            if (abs(report.epsilon - first.epsilon) > 1e-12
                    or abs(report.phi - first.phi) > 1e-12):
                raise ValueError(
                    "cannot quorum-merge reports with different guarantees: "
                    f"(epsilon={first.epsilon}, phi={first.phi}) vs "
                    f"(epsilon={report.epsilon}, phi={report.phi})"
                )
            if report.stream_length != first.stream_length:
                raise ValueError(
                    "cannot quorum-merge reports over different prefixes: "
                    f"stream_length {first.stream_length} vs {report.stream_length}"
                )
        votes: Dict[int, List[float]] = {}
        for report in reports:
            for item, estimate in report.items.items():
                votes.setdefault(item, []).append(estimate)
        items = {
            item: float(statistics.median(estimates))
            for item, estimates in votes.items()
            if len(estimates) >= quorum
        }
        return cls(
            items=items,
            stream_length=first.stream_length,
            epsilon=first.epsilon,
            phi=first.phi,
        )

    # -- correctness predicates (Definition 1 / Definition 3) ------------------------

    def contains_all_heavy(self, true_frequencies: Mapping[int, int]) -> bool:
        """True iff every item with true frequency > ϕ·m was reported."""
        threshold = self.phi * self.stream_length
        return all(
            item in self.items
            for item, frequency in true_frequencies.items()
            if frequency > threshold
        )

    def excludes_all_light(self, true_frequencies: Mapping[int, int]) -> bool:
        """True iff no reported item has true frequency ≤ (ϕ−ε)·m."""
        threshold = (self.phi - self.epsilon) * self.stream_length
        return all(true_frequencies.get(item, 0) > threshold for item in self.items)

    def max_frequency_error(self, true_frequencies: Mapping[int, int]) -> float:
        """Largest absolute error |f̃_i − f_i| over the reported items."""
        if not self.items:
            return 0.0
        return max(
            abs(estimate - true_frequencies.get(item, 0))
            for item, estimate in self.items.items()
        )

    def satisfies_definition(self, true_frequencies: Mapping[int, int]) -> bool:
        """The full (ε,ϕ) guarantee of Definition 1: recall, precision and ±εm error."""
        return (
            self.contains_all_heavy(true_frequencies)
            and self.excludes_all_light(true_frequencies)
            and self.max_frequency_error(true_frequencies) <= self.epsilon * self.stream_length
        )


@dataclass(frozen=True)
class MaximumResult:
    """The output of an ε-Maximum algorithm (paper Definition 4).

    ``item`` is the algorithm's guess at a maximum-frequency item and
    ``estimated_frequency`` its estimate of that item's frequency.
    """

    item: int
    estimated_frequency: float
    stream_length: int
    epsilon: float

    def is_correct(self, true_frequencies: Mapping[int, int]) -> bool:
        """True iff the estimate is within ε·m of the true maximum frequency."""
        true_max = max(true_frequencies.values()) if true_frequencies else 0
        return abs(self.estimated_frequency - true_max) <= self.epsilon * self.stream_length

    def item_is_near_maximum(self, true_frequencies: Mapping[int, int]) -> bool:
        """True iff the reported *item*'s true frequency is within ε·m of the maximum."""
        true_max = max(true_frequencies.values()) if true_frequencies else 0
        own = true_frequencies.get(self.item, 0)
        return true_max - own <= self.epsilon * self.stream_length


@dataclass(frozen=True)
class MinimumResult:
    """The output of an ε-Minimum algorithm (paper Definition 5)."""

    item: int
    estimated_frequency: float
    stream_length: int
    epsilon: float

    def is_correct(self, true_frequencies: Mapping[int, int], universe_size: int) -> bool:
        """True iff the reported item's true frequency is within ε·m of the minimum.

        Items that never appear in the stream have frequency zero and are valid answers
        (paper Section 1.2), which is why the universe size matters: the minimum is taken
        over the whole universe, not just over the stream's support.
        """
        support_min = min(true_frequencies.values()) if true_frequencies else 0
        true_min = 0 if len(true_frequencies) < universe_size else support_min
        own = true_frequencies.get(self.item, 0)
        return own - true_min <= self.epsilon * self.stream_length


@dataclass
class ScoreReport:
    """The output of the Borda / Maximin algorithms: a score estimate per candidate.

    ``scores`` maps candidate id to its estimated score (Borda score up to ±ε·m·n, or
    maximin score up to ±ε·m).  ``heavy_items`` lists the candidates whose estimated
    score exceeds the reporting threshold ϕ (scaled appropriately), for the List
    variants (Definitions 6 and 8).
    """

    scores: Dict[int, float]
    stream_length: int
    epsilon: float
    phi: Optional[float] = None
    heavy_items: List[int] = field(default_factory=list)

    def approximate_winner(self) -> int:
        """The candidate with the largest estimated score (ties broken by smallest id)."""
        if not self.scores:
            raise ValueError("no candidates were scored")
        return min(self.scores, key=lambda candidate: (-self.scores[candidate], candidate))

    def score(self, candidate: int) -> float:
        return self.scores[candidate]

    def max_score_error(self, true_scores: Mapping[int, float]) -> float:
        """Largest absolute error over all candidates with a true score."""
        if not self.scores:
            return 0.0
        return max(
            abs(self.scores[candidate] - true_scores.get(candidate, 0.0))
            for candidate in self.scores
        )

    def top_candidates(self, count: int) -> List[Tuple[int, float]]:
        """The ``count`` candidates with the highest estimated scores."""
        ordered = sorted(self.scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ordered[:count]
