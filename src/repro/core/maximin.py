"""Theorem 6 — (ε,ϕ)-List Maximin and ε-Maximin.

Space: ``O(n ε⁻² log² n + n ε⁻² log n log δ⁻¹ + log log m)`` bits.

The algorithm (paper Section 3.4) samples ``ℓ = (8/ε²) log(6n/δ)`` votes and stores them
verbatim (each vote costs ``O(n log n)`` bits).  By a Chernoff bound over the ``n²``
candidate pairs, every pairwise defeat count ``D(x, y)`` — and therefore every maximin
score, which is a minimum of pairwise counts — is preserved up to ``±εm/2`` after
rescaling.  Reporting candidates above ``(ϕ − ε/2)·m`` solves the List variant;
reporting the maximum solves ε-Maximin.

The paper's matching lower bound (Theorem 13, Ω(n ε⁻²)) shows the ``n ε⁻²`` factor is
necessary, i.e. maximin heavy hitters really are much more expensive than Borda heavy
hitters — a comparison the benchmark harness reproduces measurably.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.base import RankingStreamingAlgorithm
from repro.core.results import ScoreReport
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler
from repro.primitives.space import bits_for_value
from repro.voting.rankings import Ranking
from repro.voting.scores import maximin_scores


class ListMaximin(RankingStreamingAlgorithm):
    """Theorem 6: store a Θ(ε⁻² log(n/δ))-vote sample; maximin scores on the sample."""

    def __init__(
        self,
        epsilon: float,
        num_candidates: int,
        stream_length: int,
        phi: Optional[float] = None,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive (use the unknown-length wrapper otherwise)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if phi is not None and not epsilon < phi <= 1.0:
            raise ValueError("phi must satisfy epsilon < phi <= 1")

        self.epsilon = epsilon
        self.phi = phi
        self.delta = delta
        self.num_candidates = num_candidates
        self.stream_length = stream_length
        rng = rng if rng is not None else RandomSource()

        # Theorem 6: l = (8 / eps^2) ln(6 n / delta) sampled votes.
        effective_epsilon = epsilon / 2.0
        self.target_sample_size = int(
            math.ceil(8.0 * math.log(6.0 * num_candidates / delta) / (effective_epsilon ** 2))
        )
        probability = min(1.0, 6.0 * self.target_sample_size / stream_length)
        self._sampler = CoinFlipSampler(probability, rng=rng.spawn(1))

        # The stored sample S (the paper stores the votes themselves).
        self.sampled_votes: List[Ranking] = []

    # -- stream interface ---------------------------------------------------------------

    def insert(self, ranking: Ranking) -> None:
        if ranking.num_candidates != self.num_candidates:
            raise ValueError(
                f"vote ranks {ranking.num_candidates} candidates, expected {self.num_candidates}"
            )
        self.votes_processed += 1
        if self._sampler.decide():
            self.sampled_votes.append(ranking)

    @property
    def sample_size(self) -> int:
        return len(self.sampled_votes)

    # -- queries ------------------------------------------------------------------------

    def _scale(self) -> float:
        if not self.sampled_votes:
            return 0.0
        return self.votes_processed / len(self.sampled_votes)

    def estimated_scores(self) -> Dict[int, float]:
        """Estimated maximin score of every candidate (absolute, for the whole stream)."""
        if not self.sampled_votes:
            return {candidate: 0.0 for candidate in range(self.num_candidates)}
        sample_scores = maximin_scores(self.sampled_votes)
        scale = self._scale()
        return {candidate: score * scale for candidate, score in sample_scores.items()}

    def report(self) -> ScoreReport:
        scores = self.estimated_scores()
        heavy = []
        if self.phi is not None:
            threshold = (self.phi - self.epsilon / 2.0) * self.votes_processed
            heavy = sorted(
                candidate for candidate, score in scores.items() if score > threshold
            )
        return ScoreReport(
            scores=scores,
            stream_length=self.votes_processed,
            epsilon=self.epsilon,
            phi=self.phi,
            heavy_items=heavy,
        )

    # -- space accounting ----------------------------------------------------------------

    def refresh_space(self) -> None:
        self.space.set_component("sampler", self._sampler.space_bits())
        # Each stored vote is a permutation of n candidates: n * ceil(log2 n) bits.
        vote_bits = self.num_candidates * bits_for_value(max(1, self.num_candidates - 1))
        self.space.set_component("sampled_votes", len(self.sampled_votes) * vote_bits)
