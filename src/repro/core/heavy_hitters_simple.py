"""Algorithm 1 / Theorem 1 — the simpler, near-optimal (ε,ϕ)-List heavy hitters.

Space: ``O(ε⁻¹ (log ε⁻¹ + log log δ⁻¹) + ϕ⁻¹ log n + log log m)`` bits.

The idea (paper Section 3.1.1):

1. Sample ``O(ε⁻² log(1/δ))`` stream items uniformly (Bernoulli rate ``~ ℓ/m``); by
   Lemma 3 every relative frequency is preserved to within ``±ε/2`` in the sample.
2. Hash the ids of the sampled items into a space of size ``poly(ε⁻¹, δ⁻¹)``; by
   Lemma 2 the sampled items have distinct hashed ids, so counting hashed ids is as
   good as counting the items themselves — but a hashed id needs only
   ``O(log ε⁻¹ + log δ⁻¹)`` bits instead of ``log n``.
3. Feed the hashed ids to a Misra–Gries table ``T1`` with ``O(1/ε)`` counters.
4. Separately remember the *actual* ids of the items whose hashes currently hold the
   top ``O(1/ϕ)`` counters (table ``T2``), because the answer must name real items.
5. At reporting time, return the items of ``T2`` whose (rescaled) counter exceeds
   ``(ϕ − ε/2) m``.

This implementation follows the paper's structure exactly; the only liberties taken are
constant factors (we split the error budget evenly between the sampling error and the
Misra–Gries error so that the end-to-end ``±εm`` guarantee of Definition 1 actually
holds, which the paper's constant-free prose glosses over).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.misra_gries import MisraGriesTable
from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport, MaximumResult
from repro.primitives.batching import as_item_array, validate_universe
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler
from repro.primitives.space import bits_for_value


class SimpleListHeavyHitters(FrequencyEstimator):
    """Algorithm 1 of the paper: sampled, hashed Misra–Gries with an id side-table."""

    def __init__(
        self,
        epsilon: float,
        phi: float,
        universe_size: int,
        stream_length: int,
        delta: float = 0.1,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not epsilon < phi <= 1.0:
            raise ValueError("phi must satisfy epsilon < phi <= 1")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive (use the unknown-length wrapper otherwise)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")

        self.epsilon = epsilon
        self.phi = phi
        self.delta = delta
        self.universe_size = universe_size
        self.stream_length = stream_length
        rng = rng if rng is not None else RandomSource()

        # Split the ±εm budget: ε/2 for the sampling error (Lemma 3), ε/2 for the
        # Misra–Gries error on the sample.
        self._sampling_epsilon = epsilon / 2.0
        # Line 2 of Algorithm 1: the target sample size.
        self.target_sample_size = int(
            math.ceil(6.0 * math.log(6.0 / delta) / (self._sampling_epsilon ** 2))
        )
        # Line 8: sample each arrival with probability p = 6 l / m (capped at 1,
        # rounded to a power-of-two reciprocal per footnote 3 — CoinFlipSampler does so).
        probability = min(1.0, 6.0 * self.target_sample_size / stream_length)
        self._sampler = CoinFlipSampler(probability, rng=rng.spawn(1))
        self.sample_size = 0

        # Line 3: the id hash.  The hash range is poly(l, 1/delta) so that, by Lemma 2,
        # the at most ~11 l sampled items collide with probability at most ~delta.
        self.hash_range = int(math.ceil(10.0 * (self.target_sample_size ** 2) / delta))
        family = UniversalHashFamily(universe_size, self.hash_range, rng=rng.spawn(2))
        self.hash_function: UniversalHashFunction = family.draw()

        # Line 4: T1, the Misra–Gries table over hashed ids, with O(1/eps) counters.
        self.table_capacity = int(math.ceil(2.0 / epsilon)) + 1
        self.t1 = MisraGriesTable(num_counters=self.table_capacity)

        # Line 5: T2, the ids of the items whose hashes hold the top O(1/phi) counters.
        self.id_table_capacity = int(math.ceil(1.0 / max(phi - epsilon, epsilon))) + 1
        self.t2: Dict[int, int] = {}  # hashed id -> actual id

    # -- stream interface ---------------------------------------------------------------

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        # Line 8: sample.
        if not self._sampler.decide():
            return
        self.sample_size += 1
        hashed = self.hash_function(item)
        # Line 9: Misra–Gries update on the hashed id.
        self.t1.update(hashed)
        # Lines 10-16: keep T2 consistent with the top-1/phi hashed keys of T1.
        self._synchronize_id_table(hashed, item)

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion (statistically equivalent to sequential insertion).

        Three batch tricks, in the order of Algorithm 1's lines:

        * line 8 — the Lemma 1 sampler skips ahead geometrically, touching the RNG only
          ``O(p * batch + 1)`` times instead of once per arrival;
        * line 9 — the sampled ids are pre-aggregated and hashed *per distinct id* with
          one vectorized Carter–Wegman pass (the id-hash prime is huge, so hashing
          distinct ids with multiplicities is what keeps the big-int work small), and
          ``T1`` receives one weighted Misra–Gries update per distinct id;
        * lines 10-16 — the ``T2`` id side-table is synchronized once per distinct
          sampled id, in first-occurrence order.

        RNG consumption order and Misra–Gries decrement interleaving differ from the
        per-item path, so runs with the same seed diverge bit-wise; the estimator, the
        (ε, ϕ) guarantee and the space accounting are identical.
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        if array.size == 0:
            return
        self.items_processed += int(array.size)
        # Line 8: skip-ahead sampling.
        sampled_indices = self._sampler.accepted_indices(int(array.size))
        if not sampled_indices:
            return
        sampled = array[sampled_indices]
        self.sample_size += int(sampled.size)
        # Pre-aggregate in first-occurrence order (T2 displacement is order-sensitive).
        values, first_positions, counts = np.unique(
            sampled, return_index=True, return_counts=True
        )
        order = np.argsort(first_positions, kind="stable")
        values, counts = values[order], counts[order]
        # Line 9: one vectorized hash pass over the distinct sampled ids.
        hashed_values = self.hash_function.hash_many(values)
        for item, hashed, count in zip(
            values.tolist(), hashed_values.tolist(), counts.tolist()
        ):
            self.t1.update(hashed, count)
            self._synchronize_id_table(hashed, item)

    def _synchronize_id_table(self, hashed: int, item: int) -> None:
        """Maintain T2 = actual ids of the highest-valued hashed keys in T1.

        This follows the paper's incremental case analysis (lines 10-16 of Algorithm 1):
        when the just-updated hash is already tracked nothing changes; when it is not,
        it displaces the currently lowest-valued tracked id if its counter is now
        higher.  The cost is O(1/phi) per *sampled* item, which the paper spreads over
        the next O(1/eps) arrivals to get O(1) worst-case update time.
        """
        if hashed in self.t2:
            self.t2[hashed] = item
            return
        current_value = self.t1.get(hashed)
        if current_value == 0:
            return
        if len(self.t2) < self.id_table_capacity:
            self.t2[hashed] = item
            return
        # Case 2 of the paper: the new hash may have overtaken the weakest tracked one.
        weakest_hash = min(self.t2, key=lambda stored: (self.t1.get(stored), stored))
        if self.t1.get(weakest_hash) < current_value:
            del self.t2[weakest_hash]
            self.t2[hashed] = item

    def merge(self, other: "SimpleListHeavyHitters") -> None:
        """Fold another shard's Algorithm 1 state into this one.

        Requires identical parameters and a *shared* id hash function (the sharded
        executor arranges this), so hashed ids are comparable across instances.  ``T1``
        (Misra–Gries over hashed ids) merges losslessly; the merged ``T2`` id
        side-table keeps the actual ids of the highest-valued hashed keys of the
        merged ``T1``, which is exactly the invariant the incremental case analysis of
        lines 10-16 maintains; sample and stream counts add.
        """
        if not isinstance(other, SimpleListHeavyHitters):
            raise TypeError(
                f"cannot merge SimpleListHeavyHitters with {type(other).__name__}"
            )
        if (
            other.epsilon != self.epsilon
            or other.phi != self.phi
            or other.universe_size != self.universe_size
            or other.hash_range != self.hash_range
            or other.table_capacity != self.table_capacity
            or other.id_table_capacity != self.id_table_capacity
            # The sampling rate is derived from the (full) stream length, so a
            # mismatch would silently combine samples drawn at different rates.
            or other.stream_length != self.stream_length
        ):
            raise ValueError("cannot merge Algorithm 1 instances with different parameters")
        if other.hash_function != self.hash_function:
            raise ValueError(
                "cannot merge Algorithm 1 instances with different id hash functions; "
                "build the shards with shared hash functions (see repro.sharding)"
            )
        self.t1.merge(other.t1)
        combined = dict(other.t2)
        combined.update(self.t2)  # on collision both map hash -> some occurrence's id
        survivors = sorted(
            (
                (hashed, item)
                for hashed, item in combined.items()
                if self.t1.get(hashed) > 0
            ),
            key=lambda pair: (-self.t1.get(pair[0]), pair[0]),
        )
        self.t2 = dict(survivors[: self.id_table_capacity])
        self.sample_size += other.sample_size
        self.items_processed += other.items_processed

    # -- queries ------------------------------------------------------------------------

    def _scale(self) -> float:
        """Factor converting sample counts to absolute stream frequencies."""
        if self.sample_size == 0:
            return 0.0
        return self.items_processed / self.sample_size

    def estimate(self, item: int) -> float:
        """Estimated absolute frequency of an item (0 for items not tracked)."""
        return self.t1.get(self.hash_function(item)) * self._scale()

    def report(self) -> HeavyHittersReport:
        """Lines 18-19 plus the Definition 1 filter at threshold (ϕ − ε/2)·m."""
        threshold = (self.phi - self.epsilon / 2.0) * self.items_processed
        items: Dict[int, float] = {}
        scale = self._scale()
        for hashed, item in self.t2.items():
            estimated = self.t1.get(hashed) * scale
            if estimated > threshold:
                items[item] = estimated
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=self.phi,
        )

    def report_maximum(self) -> MaximumResult:
        """The ε-Maximum variant (Theorem 3): the id with the largest counter in T1."""
        scale = self._scale()
        best_item, best_estimate = -1, -1.0
        for hashed, item in self.t2.items():
            estimated = self.t1.get(hashed) * scale
            if estimated > best_estimate:
                best_item, best_estimate = item, estimated
        if best_item < 0:
            best_item, best_estimate = 0, 0.0
        return MaximumResult(
            item=best_item,
            estimated_frequency=best_estimate,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
        )

    # -- space accounting ----------------------------------------------------------------

    def refresh_space(self) -> None:
        # Sampler state (Lemma 1): O(log log m).
        self.space.set_component("sampler", self._sampler.space_bits())
        # Hash function description: O(log n).
        self.space.set_component("hash_function", self.hash_function.description_bits())
        # T1: eps^-1 entries, each a hashed key of O(log eps^-1 + log delta^-1) bits and
        # a counter of O(log sample_size) bits.
        key_bits = bits_for_value(self.hash_range - 1)
        value_bits = bits_for_value(max(1, 11 * self.target_sample_size))
        self.space.set_component("T1", self.t1.space_bits(key_bits, value_bits))
        # T2: phi^-1 ids of log n bits each.
        id_bits = bits_for_value(self.universe_size - 1)
        self.space.set_component("T2", self.id_table_capacity * id_bits)
