"""Evaluation machinery: accuracy metrics, theory curves and the experiment harness.

* :mod:`repro.analysis.metrics` — precision/recall/F1 of reported heavy-hitter sets and
  error statistics of frequency / score estimates.
* :mod:`repro.analysis.theory` — helpers for comparing measured space against the
  Table 1 formulas (scaling-shape checks, crossover points against Misra–Gries).
* :mod:`repro.analysis.harness` — the experiment runner used by the benchmark suite and
  by ``examples/`` to regenerate the EXPERIMENTS.md tables.
"""

from repro.analysis.metrics import (
    HeavyHitterAccuracy,
    evaluate_heavy_hitters,
    frequency_error_statistics,
    score_error_statistics,
)
from repro.analysis.theory import (
    scaling_exponent,
    space_ratio_to_bound,
    heavy_hitters_crossover_universe_size,
)
from repro.analysis.harness import (
    ExperimentRow,
    run_heavy_hitter_comparison,
    run_sharded_comparison,
    run_single_reference,
    run_space_scaling_experiment,
    format_table,
)
from repro.analysis.tail import (
    residual_mass,
    tail_error_bound,
    achieved_tail_error,
    counter_summary_residual_bound,
    guarantee_comparison,
)

__all__ = [
    "HeavyHitterAccuracy",
    "evaluate_heavy_hitters",
    "frequency_error_statistics",
    "score_error_statistics",
    "scaling_exponent",
    "space_ratio_to_bound",
    "heavy_hitters_crossover_universe_size",
    "ExperimentRow",
    "run_heavy_hitter_comparison",
    "run_sharded_comparison",
    "run_single_reference",
    "run_space_scaling_experiment",
    "format_table",
    "residual_mass",
    "tail_error_bound",
    "achieved_tail_error",
    "counter_summary_residual_bound",
    "guarantee_comparison",
]
