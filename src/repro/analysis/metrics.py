"""Accuracy metrics for heavy-hitter reports and score estimates.

These implement the success criteria of Definition 1 (and its ranking analogues) as
measurable quantities: recall over the truly ϕ-heavy items, precision against the
(ϕ−ε)-light items, and the distribution of the additive estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.results import HeavyHittersReport, ScoreReport


@dataclass(frozen=True)
class HeavyHitterAccuracy:
    """Accuracy of one heavy-hitters report against exact frequencies."""

    true_heavy_count: int
    reported_count: int
    recalled_heavy_count: int
    false_light_count: int
    max_frequency_error: float
    mean_frequency_error: float
    satisfies_definition: bool

    @property
    def recall(self) -> float:
        """Fraction of truly ϕ-heavy items that were reported."""
        if self.true_heavy_count == 0:
            return 1.0
        return self.recalled_heavy_count / self.true_heavy_count

    @property
    def precision(self) -> float:
        """Fraction of reported items that are not (ϕ−ε)-light."""
        if self.reported_count == 0:
            return 1.0
        return 1.0 - self.false_light_count / self.reported_count

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_heavy_hitters(
    report: HeavyHittersReport,
    true_frequencies: Mapping[int, int],
) -> HeavyHitterAccuracy:
    """Score a heavy-hitters report against the exact frequency table."""
    stream_length = report.stream_length
    heavy_threshold = report.phi * stream_length
    light_threshold = (report.phi - report.epsilon) * stream_length

    true_heavy = {
        item for item, frequency in true_frequencies.items() if frequency > heavy_threshold
    }
    recalled = {item for item in true_heavy if item in report}
    false_light = {
        item
        for item in report
        if true_frequencies.get(item, 0) <= light_threshold
    }
    errors = [
        abs(estimate - true_frequencies.get(item, 0))
        for item, estimate in report.items.items()
    ]
    return HeavyHitterAccuracy(
        true_heavy_count=len(true_heavy),
        reported_count=len(report),
        recalled_heavy_count=len(recalled),
        false_light_count=len(false_light),
        max_frequency_error=max(errors) if errors else 0.0,
        mean_frequency_error=(sum(errors) / len(errors)) if errors else 0.0,
        satisfies_definition=report.satisfies_definition(true_frequencies),
    )


def frequency_error_statistics(
    estimates: Mapping[int, float],
    true_frequencies: Mapping[int, int],
    stream_length: int,
) -> Dict[str, float]:
    """Absolute and relative (to m) error statistics of a set of frequency estimates."""
    if not estimates:
        return {"max_abs_error": 0.0, "mean_abs_error": 0.0, "max_relative_error": 0.0}
    errors = [
        abs(estimate - true_frequencies.get(item, 0))
        for item, estimate in estimates.items()
    ]
    return {
        "max_abs_error": max(errors),
        "mean_abs_error": sum(errors) / len(errors),
        "max_relative_error": max(errors) / max(1, stream_length),
    }


def score_error_statistics(
    report: ScoreReport,
    true_scores: Mapping[int, float],
    normalizer: float,
) -> Dict[str, float]:
    """Error statistics of a Borda / maximin score report.

    ``normalizer`` is the paper's scale for the additive guarantee: ``m·n`` for Borda
    scores and ``m`` for maximin scores.
    """
    if not report.scores:
        return {"max_abs_error": 0.0, "mean_abs_error": 0.0, "max_normalized_error": 0.0}
    errors = [
        abs(report.scores[candidate] - true_scores.get(candidate, 0.0))
        for candidate in report.scores
    ]
    return {
        "max_abs_error": max(errors),
        "mean_abs_error": sum(errors) / len(errors),
        "max_normalized_error": max(errors) / max(1.0, normalizer),
    }


def winner_is_approximate(
    reported_winner: int,
    true_scores: Mapping[int, float],
    tolerance: float,
) -> bool:
    """True iff the reported winner's true score is within ``tolerance`` of the best."""
    if not true_scores:
        return True
    best = max(true_scores.values())
    return best - true_scores.get(reported_winner, 0.0) <= tolerance
