"""The experiment harness: run algorithms on workloads and tabulate the results.

The benchmark modules under ``benchmarks/`` and the example scripts both use these
helpers, so the numbers recorded in EXPERIMENTS.md come from exactly the code a user
would run themselves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.metrics import HeavyHitterAccuracy, evaluate_heavy_hitters
from repro.core.base import FrequencyEstimator
from repro.primitives.batching import iter_chunks
from repro.streams.stream import Stream
from repro.streams.truth import exact_frequencies


@dataclass
class ExperimentRow:
    """One row of an experiment table: a label, parameters and measured quantities."""

    label: str
    parameters: Dict[str, object] = field(default_factory=dict)
    measurements: Dict[str, float] = field(default_factory=dict)

    def as_flat_dict(self) -> Dict[str, object]:
        flat: Dict[str, object] = {"label": self.label}
        flat.update(self.parameters)
        flat.update(self.measurements)
        return flat


def run_algorithm_on_stream(
    algorithm,
    stream: Stream,
    batch_size: Optional[int] = None,
) -> Dict[str, float]:
    """Consume a stream, timing the updates, and return space/time measurements.

    With ``batch_size`` set, the stream is fed in chunks through the algorithm's
    ``insert_many`` fast path (see :mod:`repro.core.base`); otherwise items are
    inserted one at a time, as the paper's per-arrival model describes.
    """
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")
    start = time.perf_counter()
    if batch_size is None:
        for item in stream:
            algorithm.insert(item)
    else:
        for chunk in iter_chunks(stream, batch_size):
            algorithm.insert_many(chunk)
    elapsed = time.perf_counter() - start
    length = max(1, len(stream))
    return {
        "total_seconds": elapsed,
        "seconds_per_update": elapsed / length,
        "updates_per_second": length / elapsed if elapsed > 0 else float("inf"),
        "space_bits": float(algorithm.space_bits()),
    }


def run_heavy_hitter_comparison(
    algorithms: Mapping[str, Callable[[], FrequencyEstimator]],
    stream: Stream,
    phi: float,
    batch_size: Optional[int] = None,
) -> List[ExperimentRow]:
    """Run several heavy-hitter algorithms on the same stream and tabulate accuracy/space.

    ``algorithms`` maps a label to a zero-argument factory (so each algorithm starts
    fresh); the factory's product must expose ``insert``, ``report`` and ``space_bits``.
    ``batch_size`` switches ingestion to the chunked ``insert_many`` fast path.
    """
    truth = exact_frequencies(stream)
    rows: List[ExperimentRow] = []
    for label, factory in algorithms.items():
        algorithm = factory()
        timing = run_algorithm_on_stream(algorithm, stream, batch_size=batch_size)
        report = algorithm.report()
        accuracy: Optional[HeavyHitterAccuracy] = None
        try:
            accuracy = evaluate_heavy_hitters(report, truth)
        except AttributeError:
            accuracy = None
        measurements = dict(timing)
        if accuracy is not None:
            measurements.update(
                {
                    "recall": accuracy.recall,
                    "precision": accuracy.precision,
                    "max_error_fraction_of_m": accuracy.max_frequency_error / max(1, len(stream)),
                    "reported": float(accuracy.reported_count),
                }
            )
        rows.append(
            ExperimentRow(
                label=label,
                parameters={
                    "stream": stream.name,
                    "m": len(stream),
                    "n": stream.universe_size,
                    "phi": phi,
                },
                measurements=measurements,
            )
        )
    return rows


def run_space_scaling_experiment(
    factory: Callable[[Dict[str, float]], object],
    stream_factory: Callable[[Dict[str, float]], Stream],
    parameter_grid: Sequence[Dict[str, float]],
    label: str = "algorithm",
) -> List[ExperimentRow]:
    """Sweep a parameter grid, measuring the algorithm's space on each configuration.

    ``factory(params)`` builds the algorithm for one grid point, ``stream_factory(params)``
    the workload; each grid point contributes one row with the measured peak space.
    """
    rows: List[ExperimentRow] = []
    for params in parameter_grid:
        stream = stream_factory(params)
        algorithm = factory(params)
        for item in stream:
            algorithm.insert(item)
        rows.append(
            ExperimentRow(
                label=label,
                parameters=dict(params),
                measurements={
                    "space_bits": float(algorithm.space_bits()),
                    "peak_space_bits": float(
                        getattr(algorithm, "peak_space_bits", algorithm.space_bits)()
                    ),
                },
            )
        )
    return rows


def format_table(rows: Iterable[ExperimentRow], columns: Optional[Sequence[str]] = None) -> str:
    """Render experiment rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].as_flat_dict().keys())
    header = "| " + " | ".join(columns) + " |"
    divider = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, divider]
    for row in rows:
        flat = row.as_flat_dict()
        cells = []
        for column in columns:
            value = flat.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
