"""The experiment harness: run algorithms on workloads and tabulate the results.

The benchmark modules under ``benchmarks/`` and the example scripts both use these
helpers, so the numbers recorded in EXPERIMENTS.md come from exactly the code a user
would run themselves.
"""

from __future__ import annotations

import os
import signal
import statistics
import subprocess
import sys
import tempfile
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.metrics import HeavyHitterAccuracy, evaluate_heavy_hitters
from repro.core.base import FrequencyEstimator
from repro.pipeline import PipelinedExecutor
from repro.primitives.batching import iter_chunks
from repro.primitives.rng import RandomSource
from repro.replication import FaultPlan, ReplicaGroup, ReplicaSupervisor
from repro.service import (
    Checkpointer,
    IngestServer,
    RetryPolicy,
    ServiceClient,
    derive_stream_seed,
)
from repro.service.protocol import report_to_payload
from repro.sharding import ShardedExecutor
from repro.streams.io import iterate_stream_file, iterate_stream_file_chunks, stream_file_metadata
from repro.streams.stream import Stream
from repro.streams.truth import exact_frequencies


@dataclass
class ExperimentRow:
    """One row of an experiment table: a label, parameters and measured quantities."""

    label: str
    parameters: Dict[str, object] = field(default_factory=dict)
    measurements: Dict[str, float] = field(default_factory=dict)

    def as_flat_dict(self) -> Dict[str, object]:
        flat: Dict[str, object] = {"label": self.label}
        flat.update(self.parameters)
        flat.update(self.measurements)
        return flat


def run_algorithm_on_stream(
    algorithm,
    stream: Stream,
    batch_size: Optional[int] = None,
) -> Dict[str, float]:
    """Consume a stream, timing the updates, and return space/time measurements.

    With ``batch_size`` set, the stream is fed in chunks through the algorithm's
    ``insert_many`` fast path (see :mod:`repro.core.base`); otherwise items are
    inserted one at a time, as the paper's per-arrival model describes.
    """
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")
    start = time.perf_counter()
    if batch_size is None:
        for item in stream:
            algorithm.insert(item)
    else:
        for chunk in iter_chunks(stream, batch_size):
            algorithm.insert_many(chunk)
    elapsed = time.perf_counter() - start
    length = max(1, len(stream))
    return {
        "total_seconds": elapsed,
        "seconds_per_update": elapsed / length,
        "updates_per_second": length / elapsed if elapsed > 0 else float("inf"),
        "space_bits": float(algorithm.space_bits()),
    }


def run_heavy_hitter_comparison(
    algorithms: Mapping[str, Callable[[], FrequencyEstimator]],
    stream: Stream,
    phi: float,
    batch_size: Optional[int] = None,
) -> List[ExperimentRow]:
    """Run several heavy-hitter algorithms on the same stream and tabulate accuracy/space.

    ``algorithms`` maps a label to a zero-argument factory (so each algorithm starts
    fresh); the factory's product must expose ``insert``, ``report`` and ``space_bits``.
    ``batch_size`` switches ingestion to the chunked ``insert_many`` fast path.
    """
    truth = exact_frequencies(stream)
    rows: List[ExperimentRow] = []
    for label, factory in algorithms.items():
        algorithm = factory()
        timing = run_algorithm_on_stream(algorithm, stream, batch_size=batch_size)
        report = algorithm.report()
        accuracy: Optional[HeavyHitterAccuracy] = None
        try:
            accuracy = evaluate_heavy_hitters(report, truth)
        except AttributeError:
            accuracy = None
        measurements = dict(timing)
        if accuracy is not None:
            measurements.update(
                {
                    "recall": accuracy.recall,
                    "precision": accuracy.precision,
                    "max_error_fraction_of_m": accuracy.max_frequency_error / max(1, len(stream)),
                    "reported": float(accuracy.reported_count),
                }
            )
        rows.append(
            ExperimentRow(
                label=label,
                parameters={
                    "stream": stream.name,
                    "m": len(stream),
                    "n": stream.universe_size,
                    "phi": phi,
                },
                measurements=measurements,
            )
        )
    return rows


def _heavy_hitter_measurements(
    report,
    true_frequencies: Mapping[int, int],
    stream_length: int,
    elapsed: float,
    space_bits: float,
) -> Dict[str, float]:
    """The shared measurement set of the sharded-vs-single comparison rows."""
    accuracy = evaluate_heavy_hitters(report, true_frequencies)
    return {
        "total_seconds": elapsed,
        "space_bits": space_bits,
        "recall": accuracy.recall,
        "precision": accuracy.precision,
        "max_error_fraction_of_m": accuracy.max_frequency_error / max(1, stream_length),
        "reported": float(accuracy.reported_count),
        "satisfies_definition": float(accuracy.satisfies_definition),
    }


def run_single_reference(
    factory: Callable[[int], FrequencyEstimator],
    stream: Stream,
    phi: float,
    batch_size: Optional[int] = None,
    report_kwargs: Optional[Mapping[str, object]] = None,
    true_frequencies: Optional[Mapping[int, int]] = None,
):
    """One single-instance reference run for the sharded comparison.

    Returns ``(row, report)`` so callers that compare several sharded drivers
    against the same reference (e.g. the sharding benchmark) pay for the reference
    ingestion once and hand the report to :func:`run_sharded_comparison` via
    ``reference_report``.
    """
    truth = true_frequencies if true_frequencies is not None else exact_frequencies(stream)
    single = factory(0)
    timing = run_algorithm_on_stream(single, stream, batch_size=batch_size)
    # Include report construction in the timed span, as the sharded rows do (their
    # seconds cover routing + ingestion + merge + report), so single-vs-sharded
    # total_seconds compare the same pipeline.
    report_start = time.perf_counter()
    report = single.report(**dict(report_kwargs or {}))
    report_seconds = time.perf_counter() - report_start
    elapsed = timing["total_seconds"] + report_seconds
    measurements = _heavy_hitter_measurements(
        report, truth, len(stream), elapsed, timing["space_bits"]
    )
    # The single-instance analogue of the sharded ingest/combine split: ingestion is
    # the stream consumption, "combine" degenerates to report construction.
    measurements["ingest_seconds"] = timing["total_seconds"]
    measurements["combine_seconds"] = report_seconds
    row = ExperimentRow(
        label="single",
        parameters={"stream": stream.name, "m": len(stream), "n": stream.universe_size,
                    "phi": phi, "shards": 1},
        measurements=measurements,
    )
    return row, report


def run_sharded_comparison(
    factory: Callable[[int], FrequencyEstimator],
    stream: Stream,
    phi: float,
    shard_counts: Sequence[int] = (1, 2, 4),
    batch_size: Optional[int] = None,
    parallel: bool = False,
    rng: Optional[RandomSource] = None,
    report_kwargs: Optional[Mapping[str, object]] = None,
    reference_report=None,
    true_frequencies: Optional[Mapping[int, int]] = None,
) -> List[ExperimentRow]:
    """The combine-phase accuracy experiment: sharded vs. single-instance reports.

    Splitting a stream across shards must not silently degrade the (ε,ϕ) guarantee,
    so the merge step gets its own measurement rather than an assumption: one
    single-instance run (the reference) and one sharded run per entry of
    ``shard_counts`` all consume the *same* stream, and each row records
    recall/precision/max-error against the exact frequencies plus the symmetric
    difference between the sharded and single-instance reported sets.  Matching
    within the guarantee means: recall 1.0 over the ϕ-heavy items, no
    (ϕ−ε)-light item reported, and max error at most ε·m — the same Definition 1
    criteria the single-instance run is held to.

    ``factory(instance_index)`` builds a fresh sketch; seed per index for independent
    instances.  Index 0 is the single-instance reference, and every sharded run
    receives its own disjoint index range (1..k₁, k₁+1..k₁+k₂, ...), so no shard
    shares a seed with the reference — otherwise the k=1 row would compare a sketch
    against a bit-identical twin and the measured agreement would be tautological
    rather than evidence about the combine step.  ``parallel`` switches the sharded
    runs to the multiprocessing driver; wall-clock for either driver lands in
    ``total_seconds``.

    With ``reference_report`` set (from :func:`run_single_reference`), the reference
    run is not repeated and the returned rows contain only the sharded entries —
    used by callers comparing several drivers against one reference.
    """
    rng = rng if rng is not None else RandomSource()
    truth = true_frequencies if true_frequencies is not None else exact_frequencies(stream)
    kwargs = dict(report_kwargs or {})
    rows: List[ExperimentRow] = []
    if reference_report is None:
        single_row, reference_report = run_single_reference(
            factory, stream, phi, batch_size=batch_size, report_kwargs=kwargs,
            true_frequencies=truth,
        )
        rows.append(single_row)
    single_set = set(reference_report.items)
    next_instance_index = 1
    for shards in shard_counts:
        base_index = next_instance_index
        next_instance_index += shards
        executor = ShardedExecutor(
            factory=lambda shard, base=base_index: factory(base + shard),
            num_shards=shards,
            universe_size=stream.universe_size,
            rng=rng.spawn(shards),
        )
        result = executor.run(
            stream, batch_size=batch_size, parallel=parallel, report_kwargs=kwargs
        )
        measurements = _heavy_hitter_measurements(
            result.report, truth, len(stream), result.seconds, float(result.space_bits())
        )
        measurements["ingest_seconds"] = result.ingest_seconds
        measurements["combine_seconds"] = result.combine_seconds
        measurements["report_symmetric_difference"] = float(
            len(single_set.symmetric_difference(result.report.items))
        )
        rows.append(
            ExperimentRow(
                label=f"sharded(k={shards}{',parallel' if parallel else ''})",
                parameters={"stream": stream.name, "m": len(stream), "n": stream.universe_size,
                            "phi": phi, "shards": shards},
                measurements=measurements,
            )
        )
    return rows


def run_pipelined_comparison(
    factory: Callable[[int], FrequencyEstimator],
    path: str,
    phi: float,
    shards: int = 1,
    chunk_size: int = 1 << 16,
    queue_depth: int = 4,
    rng: Optional[RandomSource] = None,
    report_kwargs: Optional[Mapping[str, object]] = None,
    true_frequencies: Optional[Mapping[int, int]] = None,
    universe_size: Optional[int] = None,
) -> List[ExperimentRow]:
    """The pipelining-changes-nothing experiment: serial vs queue-backed disk replay.

    Pipelined ingestion reorders *work* (parsing overlaps sketch updates), not
    *data* — so its report must equal the serial chunked replay's bit for bit, not
    merely within the (ε,ϕ) guarantee.  This experiment measures that equality
    instead of assuming it: one serial :meth:`~repro.sharding.ShardedExecutor.run_chunks`
    replay of the trace at ``path`` and one
    :class:`~repro.pipeline.PipelinedExecutor` replay of the same trace are built
    with *identical* seeds (same factory indices, same router draw, same chunk
    size), and each row records the usual Definition 1 accuracy numbers, the
    ingest/combine time split, and — on the pipelined row — the symmetric
    difference against the serial report plus an ``identical_report`` indicator
    (1.0 when the reported (item → estimate) maps match exactly).

    ``factory(instance_index)`` builds a fresh sketch, seeded per index as in
    :func:`run_sharded_comparison`; both runs use indices ``0..shards-1``, which is
    what makes the comparison exact rather than statistical.  The exact frequencies
    are computed from the file in one streaming pass unless ``true_frequencies`` is
    supplied.
    """
    rng = rng if rng is not None else RandomSource()
    metadata = stream_file_metadata(path)
    length = metadata["length"]
    universe = universe_size if universe_size is not None else metadata["universe_size"]
    truth = (
        true_frequencies
        if true_frequencies is not None
        else exact_frequencies(iterate_stream_file(path))
    )
    kwargs = dict(report_kwargs or {})
    # One shared seed so the two executors draw identical routers; the factory
    # indices coincide too, so shard j's sketch is the same object state in both runs.
    router_seed = rng.random_bits(62)

    def build_executor() -> ShardedExecutor:
        return ShardedExecutor(
            factory=factory,
            num_shards=shards,
            universe_size=universe,
            rng=RandomSource(router_seed),
        )

    name = os.path.basename(path)

    def make_row(label: str, result, extra: Optional[Dict[str, float]] = None) -> ExperimentRow:
        measurements = _heavy_hitter_measurements(
            result.report, truth, length, result.seconds, float(result.space_bits())
        )
        measurements["ingest_seconds"] = result.ingest_seconds
        measurements["combine_seconds"] = result.combine_seconds
        measurements.update(extra or {})
        return ExperimentRow(
            label=label,
            parameters={"stream": name, "m": length, "n": universe, "phi": phi,
                        "shards": shards, "chunk_size": chunk_size,
                        "queue_depth": queue_depth},
            measurements=measurements,
        )

    serial_result = build_executor().run_chunks(
        iterate_stream_file_chunks(path, chunk_size), report_kwargs=kwargs
    )
    pipelined = PipelinedExecutor(
        executor=build_executor(), chunk_size=chunk_size, queue_depth=queue_depth
    )
    pipelined_result = pipelined.run(path, report_kwargs=kwargs)
    identical = dict(serial_result.report.items) == dict(pipelined_result.report.items)
    rows = [
        make_row("serial", serial_result),
        make_row(
            "pipelined",
            pipelined_result,
            extra={
                "identical_report": 1.0 if identical else 0.0,
                "report_symmetric_difference": float(
                    len(set(serial_result.report.items).symmetric_difference(
                        pipelined_result.report.items
                    ))
                ),
                "max_queue_depth": float(pipelined_result.max_queue_depth),
            },
        ),
    ]
    return rows


def run_service_comparison(
    factory: Callable[[int], FrequencyEstimator],
    path: str,
    phi: float,
    shards: int = 1,
    chunk_size: int = 1 << 16,
    queue_depth: int = 4,
    push_batch: Optional[int] = None,
    rng: Optional[RandomSource] = None,
    report_kwargs: Optional[Mapping[str, object]] = None,
    true_frequencies: Optional[Mapping[int, int]] = None,
    universe_size: Optional[int] = None,
    checkpoint: bool = True,
    push_window: int = 32,
    query_repeats: int = 5,
) -> List[ExperimentRow]:
    """The service-changes-nothing experiment: socket-served vs offline replay.

    The service layer's contract (see :mod:`repro.service`) is that crossing the
    process boundary reorders *where* work happens, not *what* the sketches see:
    pushed batches are re-chunked to the same ``chunk_size`` boundaries an offline
    replay uses, so with identical seeds the served report must equal the offline
    :meth:`~repro.sharding.ShardedExecutor.run_chunks` replay **bit for bit** —
    and, when ``checkpoint`` is on, a served run that checkpoints mid-stream,
    restarts from the file, and resumes must equal an offline replay that
    round-trips its state through the same
    :class:`~repro.service.Checkpointer` at the same chunk boundary.  This
    experiment measures both equalities instead of assuming them.

    Four rows come back (three with ``checkpoint=False``):

    * ``offline`` — the serial ``run_chunks`` replay of the trace at ``path``;
    * ``served`` — a real :class:`~repro.service.IngestServer` on a loopback
      socket, a :class:`~repro.service.ServiceClient` pushing the same trace in
      ``push_batch``-item batches (deliberately decoupled from ``chunk_size``;
      default ``chunk_size`` itself), then ``finish`` + ``query``.  Extra
      measurements: ``identical_report`` (1.0 when the (item → estimate) maps
      match the offline row exactly), ``report_symmetric_difference``,
      ``push_seconds`` and ``pushed_items_per_second`` (client-observed socket
      throughput), and the server-side ingest/combine split;
    * ``pipelined`` — the same served run, but pushed through
      :meth:`~repro.service.ServiceClient.push_stream` with a ``push_window``
      window of un-acked frames in flight (credit-capped by the server).  After
      the pushes, the prefix is flushed and held fixed while ``query_repeats``
      mid-ingest queries are timed back to back — the first builds the merged
      snapshot, the rest must hit the executor's versioned snapshot cache.
      Extra measurements beyond the ``served`` set:
      ``query_first_seconds`` / ``query_cached_seconds_median`` (and min/max),
      ``query_latency_series`` (the raw per-query seconds, a list), and
      ``snapshot_cache_hits`` / ``snapshot_cache_misses`` read from the
      server's executor;
    * ``resumed`` — push half the trace (an exact multiple of ``chunk_size``),
      ``flush``, ``checkpoint``, shut the server down, restore a fresh server
      from the file, push the rest, ``finish`` + ``query``; compared bit for bit
      (``identical_report``) against the offline checkpoint-round-trip replay of
      the same boundary.

    ``factory(instance_index)`` builds a fresh sketch, seeded per index as in
    :func:`run_pipelined_comparison`; every leg uses indices ``0..shards-1`` and
    one shared router seed, which is what makes the comparisons exact rather than
    statistical.

    Raises:
        AssertionError: never — equality lands in the rows, not in an assert, so
            benchmarks can *record* a failure; tests assert on the rows.
    """
    rng = rng if rng is not None else RandomSource()
    metadata = stream_file_metadata(path)
    length = metadata["length"]
    universe = universe_size if universe_size is not None else metadata["universe_size"]
    truth = (
        true_frequencies
        if true_frequencies is not None
        else exact_frequencies(iterate_stream_file(path))
    )
    kwargs = dict(report_kwargs or {})
    push_batch = push_batch if push_batch is not None else chunk_size
    router_seed = rng.random_bits(62)

    def build_executor() -> ShardedExecutor:
        return ShardedExecutor(
            factory=factory,
            num_shards=shards,
            universe_size=universe,
            rng=RandomSource(router_seed),
        )

    name = os.path.basename(path)
    parameters = {
        "stream": name, "m": length, "n": universe, "phi": phi, "shards": shards,
        "chunk_size": chunk_size, "queue_depth": queue_depth, "push_batch": push_batch,
    }

    def make_row(label: str, report, seconds: float, space_bits: float,
                 extra: Optional[Dict[str, float]] = None) -> ExperimentRow:
        measurements = _heavy_hitter_measurements(report, truth, length, seconds, space_bits)
        measurements.update(extra or {})
        return ExperimentRow(label=label, parameters=dict(parameters), measurements=measurements)

    # -- offline reference ----------------------------------------------------------
    offline_result = build_executor().run_chunks(
        iterate_stream_file_chunks(path, chunk_size), report_kwargs=kwargs
    )
    rows = [
        make_row(
            "offline", offline_result.report, offline_result.seconds,
            float(offline_result.space_bits()),
            extra={
                "ingest_seconds": offline_result.ingest_seconds,
                "combine_seconds": offline_result.combine_seconds,
            },
        )
    ]
    offline_items = dict(offline_result.report.items)

    def serve(pipeline: PipelinedExecutor) -> IngestServer:
        return IngestServer(
            pipeline, port=0, universe_size=universe, report_kwargs=kwargs,
        ).start()

    def push_chunks(client: ServiceClient, chunks: Iterable) -> float:
        start = time.perf_counter()
        for chunk in chunks:
            client.push(chunk)
        return time.perf_counter() - start

    # Materialize the push batches once, outside every timed push loop: the
    # pushed-items/s numbers measure the socket path (frame encode + TCP +
    # server receive/validate/enqueue), not the text-trace parsing that an
    # on-line pusher would not be doing per batch.
    push_batches = list(iterate_stream_file_chunks(path, push_batch))

    # -- served run -------------------------------------------------------------------
    server = serve(PipelinedExecutor(
        executor=build_executor(), chunk_size=chunk_size, queue_depth=queue_depth
    ))
    try:
        with ServiceClient(server.endpoint) as client:
            push_seconds = push_chunks(client, push_batches)
            finish = client.finish()
            served = client.query()
            client.shutdown()
    finally:
        server.close()
    rows.append(
        make_row(
            "served", served.report, float(finish["seconds"]), float(finish["space_bits"]),
            extra={
                "ingest_seconds": float(finish["ingest_seconds"]),
                "combine_seconds": float(finish["combine_seconds"]),
                "push_seconds": push_seconds,
                "pushed_items_per_second": length / push_seconds if push_seconds else float("inf"),
                "identical_report": 1.0 if dict(served.report.items) == offline_items else 0.0,
                "report_symmetric_difference": float(
                    len(set(served.report.items).symmetric_difference(offline_items))
                ),
            },
        )
    )

    # -- pipelined-push run -------------------------------------------------------------
    # Same trace, same seeds, but pushed with a window of un-acked frames in
    # flight (push_stream); the report must still equal the offline replay bit
    # for bit — pipelining changes when acks are read, never what the server's
    # re-chunker sees.  The flushed prefix is then held fixed while repeated
    # queries measure the snapshot cache: one deepcopy-merge on the first, O(1)
    # on the rest.
    server = serve(PipelinedExecutor(
        executor=build_executor(), chunk_size=chunk_size, queue_depth=queue_depth
    ))
    query_latencies: List[float] = []
    try:
        with ServiceClient(server.endpoint) as client:
            client.config()  # prefetch the credit grant outside the timed span
            push_start = time.perf_counter()
            client.push_stream(iter(push_batches), window=push_window)
            pipelined_push_seconds = time.perf_counter() - push_start
            client.flush()
            for _ in range(max(1, query_repeats)):
                query_start = time.perf_counter()
                client.query()
                query_latencies.append(time.perf_counter() - query_start)
            cache_hits = server.pipeline.snapshot_cache_hits
            cache_misses = server.pipeline.snapshot_cache_misses
            finish = client.finish()
            pipelined_served = client.query()
            client.shutdown()
    finally:
        server.close()
    cached = query_latencies[1:] or query_latencies
    rows.append(
        make_row(
            "pipelined", pipelined_served.report, float(finish["seconds"]),
            float(finish["space_bits"]),
            extra={
                "ingest_seconds": float(finish["ingest_seconds"]),
                "combine_seconds": float(finish["combine_seconds"]),
                "push_seconds": pipelined_push_seconds,
                "pushed_items_per_second": (
                    length / pipelined_push_seconds if pipelined_push_seconds else float("inf")
                ),
                "push_window": float(push_window),
                "identical_report": (
                    1.0 if dict(pipelined_served.report.items) == offline_items else 0.0
                ),
                "report_symmetric_difference": float(
                    len(set(pipelined_served.report.items).symmetric_difference(offline_items))
                ),
                "query_first_seconds": query_latencies[0],
                "query_cached_seconds_median": statistics.median(cached),
                "query_cached_seconds_min": min(cached),
                "query_cached_seconds_max": max(cached),
                "query_latency_series": list(query_latencies),  # list on purpose
                "snapshot_cache_hits": float(cache_hits),
                "snapshot_cache_misses": float(cache_misses),
            },
        )
    )
    if not checkpoint:
        return rows

    # -- checkpoint → restart → resume ------------------------------------------------
    total_chunks = -(-length // chunk_size)
    prefix_items = (total_chunks // 2) * chunk_size  # an exact chunk boundary
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "service.ckpt")
        server = serve(PipelinedExecutor(
            executor=build_executor(), chunk_size=chunk_size, queue_depth=queue_depth
        ))
        pushed = 0
        resume_start = time.perf_counter()
        try:
            with ServiceClient(server.endpoint) as client:
                for chunk in iterate_stream_file_chunks(path, chunk_size):
                    if pushed >= prefix_items:
                        break
                    client.push(chunk)
                    pushed += len(chunk)
                client.flush()
                client.checkpoint(ckpt)
                client.shutdown()
        finally:
            server.close()
        restored, _manifest = Checkpointer().restore_pipeline(ckpt)
        server = serve(restored)
        try:
            with ServiceClient(server.endpoint) as client:
                skipped = 0
                for chunk in iterate_stream_file_chunks(path, chunk_size):
                    if skipped < prefix_items:
                        skipped += len(chunk)
                        continue
                    client.push(chunk)
                finish = client.finish()
                resumed = client.query()
                client.shutdown()
        finally:
            server.close()
        resume_seconds = time.perf_counter() - resume_start

        # Offline replay that round-trips its state through the same Checkpointer
        # at the same boundary — the reference the resumed run must equal exactly.
        replay = PipelinedExecutor(executor=build_executor(), chunk_size=chunk_size)
        tail_chunks: List = []
        consumed = 0
        for chunk in iterate_stream_file_chunks(path, chunk_size):
            if consumed < prefix_items:
                replay.ingest_chunk(chunk)
                consumed += len(chunk)
            else:
                tail_chunks.append(chunk)
        ckpt2 = os.path.join(tmp, "offline.ckpt")
        Checkpointer().save(ckpt2, replay.sink_state())
        resumed_replay, _ = Checkpointer().restore_pipeline(ckpt2, chunk_size=chunk_size)
        for chunk in tail_chunks:
            resumed_replay.ingest_chunk(chunk)
        replay_result = resumed_replay.finalize(report_kwargs=kwargs)
    replay_items = dict(replay_result.report.items)
    rows.append(
        make_row(
            "resumed", resumed.report, resume_seconds, float(finish["space_bits"]),
            extra={
                "checkpoint_items": float(prefix_items),
                "identical_report": 1.0 if dict(resumed.report.items) == replay_items else 0.0,
                "report_symmetric_difference": float(
                    len(set(resumed.report.items).symmetric_difference(replay_items))
                ),
            },
        )
    )
    return rows


def run_tenancy_comparison(
    factory: Callable[[RandomSource], FrequencyEstimator],
    paths: Sequence[str],
    phi: float,
    chunk_size: int = 1 << 16,
    queue_depth: int = 4,
    push_batch: Optional[int] = None,
    max_live_streams: int = 2,
    seed: int = 0,
    report_kwargs: Optional[Mapping[str, object]] = None,
) -> List[ExperimentRow]:
    """The tenancy-changes-nothing experiment: k evicted streams vs k solo replays.

    One :class:`~repro.service.IngestServer` hosts ``len(paths)`` named streams
    (``s0``, ``s1``, …), each fed its own trace, with ``max_live_streams`` set
    *below* the stream count so the LRU checkpoint-eviction path is exercised
    for real: pushing round-robin forces every stream to be evicted to disk and
    lazily restored at least once.  The contract under test (see
    :mod:`repro.service.registry`) is that tenancy reorders *where* a stream's
    sink lives, never *what* it computes: each stream's served report must be
    bit-for-bit the report of a solo offline replay of just that stream's trace
    at the same seed and chunk size.

    ``factory(stream_rng)`` builds one fresh sketch from the stream's own
    :class:`~repro.primitives.rng.RandomSource`; the server seeds stream
    ``name`` with ``derive_stream_seed(seed, name)``, and the offline reference
    reuses the identical seed.  For a **deterministic** sketch the solo replay
    is the reference outright.  For a **randomized** sketch, eviction's
    save/restore re-seeds the RNG (the serialize contract in
    :mod:`repro.primitives.rng`), so the reference replay round-trips its state
    through the same :class:`~repro.service.Checkpointer` at every recorded
    eviction boundary (``eviction_boundaries`` from the stream's ``stats``) —
    after which equality is again exact, not statistical.

    One row per stream comes back, labelled ``stream:<name>``, carrying the
    usual accuracy/space measurements against that trace's exact frequencies
    plus ``identical_report`` / ``report_symmetric_difference`` vs the solo
    replay, and the observed ``evictions`` / ``restores`` counts.
    """
    if len(paths) == 0:
        raise ValueError("run_tenancy_comparison needs at least one trace")
    if max_live_streams <= 0:
        raise ValueError("max_live_streams must be positive")
    kwargs = dict(report_kwargs or {})
    push_batch = push_batch if push_batch is not None else chunk_size
    names = [f"s{index}" for index in range(len(paths))]
    universe = max(stream_file_metadata(path)["universe_size"] for path in paths)

    def stream_sink(name: str) -> PipelinedExecutor:
        stream_rng = RandomSource(derive_stream_seed(seed, name))
        return PipelinedExecutor(
            sketch=factory(stream_rng), chunk_size=chunk_size, queue_depth=queue_depth
        )

    # The default-stream sink is required by IngestServer but never pushed to.
    server = IngestServer(
        stream_sink("default-sink"), port=0, universe_size=universe,
        report_kwargs=kwargs, stream_factory=stream_sink,
        max_live_streams=max_live_streams,
    ).start()
    served: Dict[str, object] = {}
    finishes: Dict[str, Dict[str, object]] = {}
    stats: Dict[str, Dict[str, object]] = {}
    try:
        with ServiceClient(server.endpoint) as client:
            batches = {
                name: list(iterate_stream_file_chunks(path, push_batch))
                for name, path in zip(names, paths)
            }
            push_start = time.perf_counter()
            rounds = max(len(stream_batches) for stream_batches in batches.values())
            for round_index in range(rounds):
                for name in names:
                    if round_index < len(batches[name]):
                        client.push(batches[name][round_index], stream=name)
            push_seconds = time.perf_counter() - push_start
            for name in names:
                finishes[name] = client.finish(stream=name)
                served[name] = client.query(stream=name)
                stats[name] = client.stats(stream=name)
            client.shutdown()
    finally:
        server.close()

    rows: List[ExperimentRow] = []
    with tempfile.TemporaryDirectory() as tmp:
        for name, path in zip(names, paths):
            length = stream_file_metadata(path)["length"]
            truth = exact_frequencies(iterate_stream_file(path))
            boundaries = [int(b) for b in stats[name].get("eviction_boundaries", [])]

            # Solo offline replay at the stream's own seed, round-tripping
            # through the Checkpointer at each recorded eviction boundary so a
            # randomized sketch's re-seed points line up with the served run.
            replay = stream_sink(name)
            pending = list(boundaries)

            def round_trip_due(replay: PipelinedExecutor) -> PipelinedExecutor:
                while pending and replay.items_processed == pending[0]:
                    pending.pop(0)
                    ckpt = os.path.join(tmp, f"replay-{name}.ckpt")
                    Checkpointer().save(ckpt, replay.sink_state())
                    replay, _ = Checkpointer().restore_pipeline(
                        ckpt, chunk_size=chunk_size, queue_depth=queue_depth
                    )
                return replay

            for chunk in iterate_stream_file_chunks(path, chunk_size):
                replay = round_trip_due(replay)
                replay.ingest_chunk(chunk)
            replay = round_trip_due(replay)
            replay_result = replay.finalize(report_kwargs=kwargs)
            replay_items = dict(replay_result.report.items)

            result = served[name]
            finish = finishes[name]
            measurements = _heavy_hitter_measurements(
                result.report, truth, length,
                float(finish["seconds"]), float(finish["space_bits"]),
            )
            measurements.update(
                {
                    "push_seconds": push_seconds,
                    "identical_report": (
                        1.0 if dict(result.report.items) == replay_items else 0.0
                    ),
                    "report_symmetric_difference": float(
                        len(set(result.report.items).symmetric_difference(replay_items))
                    ),
                    "evictions": float(stats[name].get("evictions", 0)),
                    "restores": float(stats[name].get("restores", 0)),
                }
            )
            rows.append(
                ExperimentRow(
                    label=f"stream:{name}",
                    parameters={
                        "stream": os.path.basename(path), "m": length, "n": universe,
                        "phi": phi, "chunk_size": chunk_size,
                        "queue_depth": queue_depth, "push_batch": push_batch,
                        "streams": len(names),
                        "max_live_streams": max_live_streams,
                    },
                    measurements=measurements,
                )
            )
    return rows


def run_replication_comparison(
    factory: Callable[[int], FrequencyEstimator],
    path: str,
    phi: float,
    replicas: int = 3,
    chunk_size: int = 1 << 16,
    kill_replica: Optional[int] = 1,
    kill_after_chunk: Optional[int] = None,
    heal_after_chunks: int = 2,
    report_kwargs: Optional[Mapping[str, object]] = None,
    true_frequencies: Optional[Mapping[int, int]] = None,
    universe_size: Optional[int] = None,
) -> List[ExperimentRow]:
    """The replication-survives-failure experiment: quorum groups vs one sketch.

    Three legs over the same trace (two with ``kill_replica=None``):

    * ``single`` — one :class:`~repro.pipeline.PipelinedExecutor` over
      ``factory(0)``, the unreplicated reference;
    * ``replicated(r=R)`` — a fault-free :class:`~repro.replication.ReplicaGroup`
      over ``factory(0..R-1)``.  Replica 0 shares the single leg's seed and
      sees the identical chunk sequence, so its individual report must equal
      the single run **bit for bit** (``replica0_identical_to_single``) — the
      fan-out provably does not perturb any replica.  ``shape_ok`` checks the
      quorum-merged report carries the same (ε, ϕ, m) contract as the single
      report, and ``ingest_overhead_vs_single`` records the R× fan-out cost;
    * ``failover(r=R)`` — the same group, but a scripted
      :class:`~repro.replication.FaultPlan` kills replica ``kill_replica``
      mid-ingest.  While the group is degraded, every chunk boundary is
      queried and each answer is checked against the exact frequencies of the
      ingested *prefix* (``degraded_queries_valid``: Definition 1 holds on the
      survivors, with the reply flagged ``degraded``).  After the supervisor
      re-seeds the replacement from a survivor at chunk boundary ``H``, the
      run completes and the replacement's final report is compared bit for bit
      (``identical_report``) against an **uninterrupted equal-seed reference**:
      a fresh run with the donor's seed whose state is round-tripped through
      ``sink_state()``/``from_sink_state`` at the same boundary ``H`` — by the
      re-seed determinism contract (see :mod:`repro.replication.supervisor`)
      that reference is exactly what the clone must replay.
      ``identical_to_donor`` additionally compares against the donor's own
      uninterrupted report (equal only for sketches that draw no randomness
      after construction).  ``failover_seconds`` is the quarantine-to-re-admit
      wall clock from the group's event log.

    ``factory(instance_index)`` builds a fresh sketch, seeded per index as in
    the other comparisons.  ``kill_after_chunk`` defaults to roughly a third
    of the trace, clamped so the heal lands before the stream ends.
    """
    metadata = stream_file_metadata(path)
    length = metadata["length"]
    universe = universe_size if universe_size is not None else metadata["universe_size"]
    truth = (
        true_frequencies
        if true_frequencies is not None
        else exact_frequencies(iterate_stream_file(path))
    )
    kwargs = dict(report_kwargs or {})
    chunks = list(iterate_stream_file_chunks(path, chunk_size))
    name = os.path.basename(path)
    parameters = {
        "stream": name, "m": length, "n": universe, "phi": phi,
        "replicas": replicas, "chunk_size": chunk_size,
    }

    def make_row(label: str, result, extra: Optional[Dict[str, float]] = None) -> ExperimentRow:
        measurements = _heavy_hitter_measurements(
            result.report, truth, length, result.seconds, float(result.space_bits())
        )
        measurements["ingest_seconds"] = result.ingest_seconds
        measurements["combine_seconds"] = result.combine_seconds
        measurements.update(extra or {})
        return ExperimentRow(label=label, parameters=dict(parameters),
                             measurements=measurements)

    def run_group(fault_plan, observe: bool):
        """Ingest the trace into a fresh group; optionally query degraded windows."""
        group = ReplicaGroup(
            [PipelinedExecutor(sketch=factory(index), chunk_size=chunk_size)
             for index in range(replicas)],
            chunk_size=chunk_size,
            supervisor=ReplicaSupervisor(heal_after_chunks=heal_after_chunks),
            fault_plan=fault_plan,
        )
        prefix_truth: Counter = Counter()
        degraded_queries = 0
        degraded_valid = True
        for chunk in chunks:
            group.ingest_chunk(chunk)
            if observe:
                values, counts = np.unique(chunk, return_counts=True)
                prefix_truth.update(dict(zip(values.tolist(), counts.tolist())))
                if group.degraded:
                    snapshot = group.snapshot(report_kwargs=kwargs)
                    degraded_queries += 1
                    degraded_valid = (
                        degraded_valid
                        and snapshot.degraded
                        and snapshot.report.satisfies_definition(prefix_truth)
                    )
        return group.finalize(report_kwargs=kwargs), degraded_queries, degraded_valid

    # -- single-instance reference ------------------------------------------------------
    single = PipelinedExecutor(sketch=factory(0), chunk_size=chunk_size)
    for chunk in chunks:
        single.ingest_chunk(chunk)
    single_result = single.finalize(report_kwargs=kwargs)
    rows = [make_row("single", single_result)]
    single_items = dict(single_result.report.items)

    # -- fault-free replicated run ------------------------------------------------------
    replicated_result, _, _ = run_group(fault_plan=None, observe=False)
    replica0 = replicated_result.replica_report(0)
    quorum_report = replicated_result.report
    shape_ok = (
        quorum_report.stream_length == single_result.report.stream_length
        and abs(quorum_report.epsilon - single_result.report.epsilon) <= 1e-12
        and abs(quorum_report.phi - single_result.report.phi) <= 1e-12
    )
    single_ingest = max(single_result.ingest_seconds, 1e-9)
    rows.append(
        make_row(
            f"replicated(r={replicas})", replicated_result,
            extra={
                "shape_ok": 1.0 if shape_ok else 0.0,
                "replica0_identical_to_single": (
                    1.0 if dict(replica0.items) == single_items else 0.0
                ),
                "report_symmetric_difference": float(
                    len(set(quorum_report.items).symmetric_difference(single_items))
                ),
                "ingest_overhead_vs_single": (
                    replicated_result.ingest_seconds / single_ingest
                ),
                "quorum": float(replicated_result.quorum),
            },
        )
    )
    if kill_replica is None:
        return rows

    # -- failover run -------------------------------------------------------------------
    if not 0 <= kill_replica < replicas:
        raise ValueError(f"kill_replica must be in [0, {replicas}), got {kill_replica}")
    if kill_after_chunk is None:
        # Leave room for the heal AND a post-heal tail; a heal that never
        # happens would make the identical_report comparison meaningless.
        kill_after_chunk = max(0, min(len(chunks) // 3,
                                      len(chunks) - heal_after_chunks - 2))
    failover_result, degraded_queries, degraded_valid = run_group(
        fault_plan=FaultPlan.kill_replica(kill_replica, after_chunk=kill_after_chunk),
        observe=True,
    )
    heals = [event for event in failover_result.events
             if event["event"] == "replica-healed" and event["replica"] == kill_replica]
    if not heals:
        raise RuntimeError(
            f"the killed replica never healed (kill at chunk {kill_after_chunk}, "
            f"heal_after_chunks={heal_after_chunks}, {len(chunks)} chunks); "
            "use a longer trace or an earlier kill"
        )
    heal = heals[0]
    heal_chunk = int(heal["chunk"])
    donor = int(heal["donor"])

    # The uninterrupted equal-seed reference: the donor's seed, state
    # round-tripped at exactly the heal boundary — what the re-seeded
    # replacement must replay bit for bit.
    reference = PipelinedExecutor(sketch=factory(donor), chunk_size=chunk_size)
    for chunk in chunks[:heal_chunk]:
        reference.ingest_chunk(chunk)
    resumed = PipelinedExecutor.from_sink_state(reference.sink_state(),
                                                chunk_size=chunk_size)
    for chunk in chunks[heal_chunk:]:
        resumed.ingest_chunk(chunk)
    reference_report = resumed.finalize(report_kwargs=kwargs).report

    replacement_report = failover_result.replica_report(kill_replica)
    donor_report = failover_result.replica_report(donor)
    rows.append(
        make_row(
            f"failover(r={replicas})", failover_result,
            extra={
                "identical_report": (
                    1.0 if dict(replacement_report.items) == dict(reference_report.items)
                    else 0.0
                ),
                "identical_to_donor": (
                    1.0 if dict(replacement_report.items) == dict(donor_report.items)
                    else 0.0
                ),
                "kill_chunk": float(kill_after_chunk),
                "heal_chunk": float(heal_chunk),
                "failover_seconds": float(heal["failover_seconds"]),
                "degraded_queries": float(degraded_queries),
                "degraded_queries_valid": 1.0 if degraded_valid else 0.0,
                "quorum": float(failover_result.quorum),
            },
        )
    )
    return rows


def run_space_scaling_experiment(
    factory: Callable[[Dict[str, float]], object],
    stream_factory: Callable[[Dict[str, float]], Stream],
    parameter_grid: Sequence[Dict[str, float]],
    label: str = "algorithm",
) -> List[ExperimentRow]:
    """Sweep a parameter grid, measuring the algorithm's space on each configuration.

    ``factory(params)`` builds the algorithm for one grid point, ``stream_factory(params)``
    the workload; each grid point contributes one row with the measured peak space.
    """
    rows: List[ExperimentRow] = []
    for params in parameter_grid:
        stream = stream_factory(params)
        algorithm = factory(params)
        for item in stream:
            algorithm.insert(item)
        rows.append(
            ExperimentRow(
                label=label,
                parameters=dict(params),
                measurements={
                    "space_bits": float(algorithm.space_bits()),
                    "peak_space_bits": float(
                        getattr(algorithm, "peak_space_bits", algorithm.space_bits)()
                    ),
                },
            )
        )
    return rows


def _spawn_served_process(
    args: Sequence[str], ready_file: str, timeout: float = 60.0
) -> "tuple[subprocess.Popen, str]":
    """Start ``python -m repro serve ...`` and wait for its ready-file endpoint.

    The child inherits this interpreter and a ``PYTHONPATH`` that resolves the
    same ``repro`` package the harness imported, so in-tree runs and installed
    runs both spawn the code under test.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_root, env.get("PYTHONPATH", "")) if p
    )
    if os.path.exists(ready_file):
        os.unlink(ready_file)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + timeout
    while True:
        if os.path.exists(ready_file):
            with open(ready_file, "r", encoding="utf-8") as handle:
                endpoint = handle.read().strip()
            if endpoint:
                return process, endpoint
        if process.poll() is not None:
            output = process.stdout.read().decode("utf-8", "replace") if process.stdout else ""
            raise RuntimeError(
                f"served process exited with {process.returncode} before "
                f"becoming ready:\n{output}"
            )
        if time.monotonic() > deadline:
            process.kill()
            process.wait()
            raise RuntimeError("served process never became ready")
        time.sleep(0.02)


def _reap(process: "subprocess.Popen") -> None:
    """Wait for a served subprocess, escalating to SIGKILL if it lingers."""
    try:
        process.wait(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()


def _offline_prefix_payload(
    path: str,
    algorithm: str,
    epsilon: float,
    phi: float,
    universe: int,
    length: int,
    seed: int,
    chunk_size: int,
    items: int,
) -> Dict[str, object]:
    """The report payload of an uninterrupted replay of the trace's first ``items``.

    Built exactly as ``repro serve`` builds its single sink (same
    ``_sketch_builder`` recipe, same ``RandomSource(seed)``, same chunk
    boundaries), so under the RNG contract this payload is the bit-for-bit
    reference a crash-recovered server must reproduce.  ``items`` must be a
    multiple of ``chunk_size`` — that is all a served query can have processed.
    """
    from repro.cli import _sketch_builder  # runtime import: cli pulls in argparse wiring

    if items % chunk_size:
        raise ValueError("offline replay needs a whole number of chunks")
    build = _sketch_builder(algorithm, epsilon, phi, universe, length)
    executor = PipelinedExecutor(sketch=build(RandomSource(seed)), chunk_size=chunk_size)
    remaining = items
    for chunk in iterate_stream_file_chunks(path, chunk_size):
        if remaining <= 0:
            break
        executor.ingest_chunk(chunk[:remaining] if chunk.size > remaining else chunk)
        remaining -= min(int(chunk.size), remaining)
    report_kwargs = {"phi": phi} if algorithm == "misra-gries" else {}
    snapshot = executor.snapshot(report_kwargs=report_kwargs)
    return report_to_payload(snapshot.report)


def run_crash_comparison(
    path: str,
    phi: float,
    epsilon: float = 0.01,
    algorithm: str = "simple",
    seed: int = 42,
    chunk_size: int = 1 << 12,
    push_batch: int = 1 << 10,
    kill_after_batches: Sequence[int] = (1, 3, 7),
    wal_fsync: str = "always",
    mode: str = "sigkill",
    universe_size: Optional[int] = None,
) -> List[ExperimentRow]:
    """The kill-9 chaos sweep: crash a served ingest, restart it, diff the answer.

    For each kill point ``K`` in ``kill_after_batches``, one leg:

    1. serve a fresh :class:`~repro.service.IngestServer` as a **subprocess**
       with ``--wal-dir`` (fsync policy ``wal_fsync``), push ``K`` batches of
       ``push_batch`` items from the trace, counting the server's authoritative
       acks;
    2. kill it — ``mode="sigkill"`` sends an un-catchable ``SIGKILL`` after the
       ``K``-th ack, ``mode="crash"`` arms ``--fault crash:after_chunk=K`` so
       the server dies *inside* the ``K``-th journal append, leaving a torn
       half-record for recovery to truncate (the ``K``-th batch is then never
       acked, and must not be required after restart);
    3. restart on the same WAL directory (timing ``restart_seconds``), flush,
       and query.

    Two verdicts per leg, the acceptance gates of the durability experiment:

    * ``no_acked_loss`` — the restarted server's ``items_received`` covers
      every item whose push was acked before the kill (recovery may hold
      *more*: a batch journaled but killed before its ack is a legitimate
      superset, never a loss);
    * ``identical_report`` — the restarted server's query payload equals, bit
      for bit, an uninterrupted in-process replay of the same trace prefix at
      the same chunk boundaries (:func:`_offline_prefix_payload`), per the
      recovery equivalence contract in docs/DURABILITY.md.

    Every leg ends with a graceful shutdown so the sweep leaves no orphans.
    """
    if mode not in ("sigkill", "crash"):
        raise ValueError(f"mode must be 'sigkill' or 'crash', got {mode!r}")
    if push_batch <= 0 or chunk_size <= 0:
        raise ValueError("push_batch and chunk_size must be positive")
    metadata = stream_file_metadata(path)
    length = int(metadata["length"])
    universe = int(universe_size if universe_size is not None else metadata["universe_size"])
    batches = list(iterate_stream_file_chunks(path, push_batch))
    parameters = {
        "stream": os.path.basename(path), "m": length, "n": universe,
        "phi": phi, "epsilon": epsilon, "algorithm": algorithm,
        "chunk_size": chunk_size, "push_batch": push_batch,
        "wal_fsync": wal_fsync, "mode": mode,
    }

    rows: List[ExperimentRow] = []
    for kill_after in kill_after_batches:
        if not 1 <= kill_after <= len(batches):
            raise ValueError(
                f"kill_after_batches entry {kill_after} outside [1, {len(batches)}]"
            )
        with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
            wal_dir = os.path.join(tmp, "wal")
            ready = os.path.join(tmp, "ready")
            serve_args = [
                "serve", "--port", "0", "--universe", str(universe),
                "--stream-length", str(length), "--epsilon", str(epsilon),
                "--phi", str(phi), "--seed", str(seed), "--algorithm", algorithm,
                "--chunk-size", str(chunk_size), "--wal-dir", wal_dir,
                "--wal-fsync", wal_fsync, "--ready-file", ready,
            ]
            first_args = list(serve_args)
            if mode == "crash":
                first_args += ["--fault", f"crash:after_chunk={kill_after}"]
            process, endpoint = _spawn_served_process(first_args, ready)
            acked_items = 0
            no_retry = RetryPolicy(attempts=1)
            try:
                with ServiceClient(endpoint, retry=no_retry) as client:
                    for index in range(kill_after):
                        try:
                            acked_items = client.push(batches[index])
                        except Exception:
                            if mode != "crash" or index != kill_after - 1:
                                raise
                            # The armed fault killed the server mid-append of
                            # this batch: it was never acked, by design.
                            break
                if mode == "sigkill":
                    process.send_signal(signal.SIGKILL)
            finally:
                _reap(process)

            restart_started = time.perf_counter()
            process, endpoint = _spawn_served_process(serve_args, ready)
            try:
                with ServiceClient(endpoint) as client:
                    recovered_items = int(client.config()["items_received"])
                    restart_seconds = time.perf_counter() - restart_started
                    client.flush(timeout=120.0)
                    result = client.query()
                    client.shutdown()
            finally:
                _reap(process)

            served_payload = report_to_payload(result.report)
            offline_payload = _offline_prefix_payload(
                path, algorithm, epsilon, phi, universe, length, seed,
                chunk_size, int(result.items_processed),
            )
            rows.append(
                ExperimentRow(
                    label=f"{mode}:after_batch={kill_after}",
                    parameters=dict(parameters, kill_after_batches=kill_after),
                    measurements={
                        "acked_items": float(acked_items),
                        "recovered_items": float(recovered_items),
                        "items_processed": float(result.items_processed),
                        "no_acked_loss": 1.0 if recovered_items >= acked_items else 0.0,
                        "identical_report": 1.0 if served_payload == offline_payload else 0.0,
                        "restart_seconds": restart_seconds,
                    },
                )
            )
    return rows


def format_table(rows: Iterable[ExperimentRow], columns: Optional[Sequence[str]] = None) -> str:
    """Render experiment rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].as_flat_dict().keys())
    header = "| " + " | ".join(columns) + " |"
    divider = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, divider]
    for row in rows:
        flat = row.as_flat_dict()
        cells = []
        for column in columns:
            value = flat.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
