"""Residual ("tail") error guarantees, in the style of Berinde et al. [BICS10].

The paper's introduction contrasts its results with the stronger *tail* guarantee of
Berinde, Indyk, Cormode and Strauss: using ``O(k ε⁻¹ log(mn))`` bits one can estimate
every frequency within ``(ε/k) · F₁^res(k)``, where ``F₁^res(k)`` is the total frequency
mass excluding the ``k`` largest items.  On skewed streams ``F₁^res(k) ≪ m``, so the tail
guarantee is much stronger than the ``± εm`` guarantee of Definition 1; the paper opts
for the classical formulation and the optimal space for it.

This module provides the tail quantities so experiments can report both guarantees side
by side: the residual mass, the tail error achieved by a set of estimates, and the
Zipf-skew regime where the two guarantees genuinely differ.  It also classifies
counter-based summaries (Misra–Gries, Space-Saving) against their known residual-error
bound ``F₁^res(k)/(capacity − k + 1)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple


def residual_mass(true_frequencies: Mapping[int, int], k: int) -> int:
    """``F₁^res(k)``: the total frequency excluding the ``k`` most frequent items."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ordered = sorted(true_frequencies.values(), reverse=True)
    return sum(ordered[k:])


def top_k_mass(true_frequencies: Mapping[int, int], k: int) -> int:
    """The total frequency of the ``k`` most frequent items."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ordered = sorted(true_frequencies.values(), reverse=True)
    return sum(ordered[:k])


def tail_error_bound(true_frequencies: Mapping[int, int], k: int, epsilon: float) -> float:
    """The Berinde-et-al. target: ``(ε/k) · F₁^res(k)``."""
    if k <= 0:
        raise ValueError("k must be positive")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return (epsilon / k) * residual_mass(true_frequencies, k)


def achieved_tail_error(
    estimates: Mapping[int, float],
    true_frequencies: Mapping[int, int],
) -> float:
    """The largest absolute estimation error over the estimated items."""
    if not estimates:
        return 0.0
    return max(
        abs(estimate - true_frequencies.get(item, 0)) for item, estimate in estimates.items()
    )


def counter_summary_residual_bound(
    true_frequencies: Mapping[int, int],
    capacity: int,
    k: int,
) -> float:
    """The classical residual bound for counter summaries with ``capacity`` counters.

    Misra–Gries / Space-Saving with ``capacity`` counters guarantee an estimation error
    of at most ``F₁^res(k) / (capacity − k)`` for any ``k < capacity`` — the tail-aware
    refinement of the usual ``m / capacity`` bound ([BICS10], Berinde et al.).
    """
    if not 0 <= k < capacity:
        raise ValueError("need 0 <= k < capacity")
    return residual_mass(true_frequencies, k) / (capacity - k)


def guarantee_comparison(
    true_frequencies: Mapping[int, int],
    stream_length: int,
    epsilon: float,
    k: int,
) -> Dict[str, float]:
    """Put the Definition 1 guarantee and the tail guarantee on the same scale.

    Returns the two error budgets (``eps * m`` and ``(eps/k) * F_res(k)``) and their
    ratio; a ratio well below 1 means the workload is skewed enough for the tail
    guarantee to be meaningfully stronger (the regime [BICS10] targets), while a ratio
    near 1 means the classical guarantee — the one this paper optimizes — is just as
    good.
    """
    classical = epsilon * stream_length
    tail = tail_error_bound(true_frequencies, k, epsilon)
    return {
        "classical_budget": classical,
        "tail_budget": tail,
        "tail_over_classical": tail / classical if classical > 0 else 0.0,
        "residual_fraction": residual_mass(true_frequencies, k) / max(1, stream_length),
    }


def head_tail_split(
    true_frequencies: Mapping[int, int], k: int
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Split the frequency table into the top-``k`` head and the residual tail."""
    ordered = sorted(true_frequencies.items(), key=lambda pair: (-pair[1], pair[0]))
    head = dict(ordered[:k])
    tail = dict(ordered[k:])
    return head, tail
