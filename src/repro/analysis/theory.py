"""Comparing measured space against the Table 1 formulas.

The reproduction cannot match the paper's constant factors (there are none to match —
the paper states asymptotic bounds), so the meaningful checks are about *shape*:

* when one parameter is swept with the others fixed, the measured space should grow with
  the same exponent as the bound (``scaling_exponent`` estimates it by log-log
  regression);
* the ratio of measured space to the bound formula should stay within a bounded band
  across the sweep (``space_ratio_to_bound``);
* the paper's algorithm should beat Misra–Gries once ``log n`` is large compared to
  ``log ϕ⁻¹`` — ``heavy_hitters_crossover_universe_size`` computes where the two
  formulas cross, and the benchmark checks the measured crossover is in the same
  regime.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.lowerbounds.bounds import (
    heavy_hitters_upper_bound_bits,
    misra_gries_bound_bits,
)


def scaling_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    An exponent near 1 means linear scaling, near 0 means (poly)logarithmic or constant
    scaling — precise enough to distinguish the ``1/ε`` from the ``1/ε²`` terms of
    Table 1 in the space-scaling experiments.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points with matching lengths")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(max(y, 1e-12)) for y in ys]
    n = len(log_x)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    covariance = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    variance = sum((lx - mean_x) ** 2 for lx in log_x)
    if variance == 0.0:
        raise ValueError("all x values are identical")
    return covariance / variance


def space_ratio_to_bound(
    measured_bits: Sequence[float],
    bound_bits: Sequence[float],
) -> Dict[str, float]:
    """Min / max / spread of the measured-to-bound ratio across a sweep.

    A bounded spread (max/min not exploding across the sweep) is what "the measured
    space tracks the bound's shape" means quantitatively.
    """
    if len(measured_bits) != len(bound_bits) or not measured_bits:
        raise ValueError("need matching, non-empty sequences")
    ratios = [m / max(b, 1e-12) for m, b in zip(measured_bits, bound_bits)]
    return {
        "min_ratio": min(ratios),
        "max_ratio": max(ratios),
        "spread": max(ratios) / max(min(ratios), 1e-12),
    }


def heavy_hitters_crossover_universe_size(
    epsilon: float,
    phi: float,
    m: int,
    max_log_n: int = 60,
) -> int:
    """The smallest universe size at which the paper's bound beats Misra–Gries.

    Both formulas are evaluated literally (no constants); the crossover illustrates the
    paper's point that the gap between ``ε⁻¹ log ϕ⁻¹ + ϕ⁻¹ log n`` and
    ``ε⁻¹ (log n + log m)`` grows with ``log n``.
    """
    for log_n in range(1, max_log_n + 1):
        n = 2 ** log_n
        ours = heavy_hitters_upper_bound_bits(epsilon, phi, n, m)
        theirs = misra_gries_bound_bits(epsilon, n, m)
        if ours < theirs:
            return n
    return 2 ** max_log_n


def improvement_factor(epsilon: float, phi: float, n: int, m: int) -> float:
    """How many times smaller the paper's bound is than Misra–Gries for given parameters."""
    ours = heavy_hitters_upper_bound_bits(epsilon, phi, n, m)
    theirs = misra_gries_bound_bits(epsilon, n, m)
    return theirs / max(ours, 1e-12)
