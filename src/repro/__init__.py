"""repro — a reproduction of "An Optimal Algorithm for ℓ1-Heavy Hitters in Insertion
Streams and Related Problems" (Bhattacharyya, Dey, Woodruff, PODS 2016).

The package is organized the way the paper is:

* :mod:`repro.core` — the paper's algorithms: Algorithm 1 and Algorithm 2 for
  (ε,ϕ)-List heavy hitters, ε-Maximum, Algorithm 3 for ε-Minimum, the Borda and Maximin
  algorithms, and the unknown-stream-length wrappers.
* :mod:`repro.baselines` — the prior art the paper compares against (Misra–Gries,
  Count-Min, CountSketch, Space-Saving, Lossy Counting, Sticky Sampling).
* :mod:`repro.primitives` — hash families, samplers, Morris counters, accelerated
  counters and bit-level space accounting.
* :mod:`repro.streams` / :mod:`repro.voting` — synthetic item streams and vote streams
  with known ground truth.
* :mod:`repro.sharding` — the sharded ingestion subsystem: a hash-partitioning
  :class:`~repro.sharding.ShardRouter`, the :class:`~repro.sharding.Mergeable`
  summary protocol (every heavy-hitter sketch implements ``merge``), and a
  :class:`~repro.sharding.ShardedExecutor` with serial and process-parallel drivers —
  see that package's docstring for the split → sketch → merge guarantees.
* :mod:`repro.pipeline` — async pipelined ingestion: a bounded-queue
  :class:`~repro.pipeline.ChunkProducer` thread overlaps stream parsing with sketch
  updates, and a :class:`~repro.pipeline.PipelinedExecutor` drives a single sketch or
  the sharded fan-out, with consistent mid-ingest ``snapshot()`` queries — see that
  package's docstring for the backpressure/ordering/determinism contract.
* :mod:`repro.service` — the network service layer: an
  :class:`~repro.service.IngestServer` ingests item batches pushed by
  :class:`~repro.service.ServiceClient` peers (TCP or Unix socket), answers
  Definition 1 queries mid-ingest, and checkpoints/restores full sketch state via
  :class:`~repro.service.Checkpointer` — see that package's docstring for the
  served-equals-offline guarantee.
* :mod:`repro.lowerbounds` — executable versions of the paper's lower-bound reductions
  and the Table 1 bound formulas.
* :mod:`repro.analysis` — accuracy metrics and the experiment harness used by the
  benchmark suite.

Quickstart::

    from repro import SimpleListHeavyHitters, zipfian_stream

    stream = zipfian_stream(length=200_000, universe_size=10_000, skew=1.2)
    algo = SimpleListHeavyHitters(
        epsilon=0.01, phi=0.05, universe_size=stream.universe_size,
        stream_length=len(stream),
    )
    algo.consume(stream)
    report = algo.report()
    for item, estimate in sorted(report.items.items(), key=lambda kv: -kv[1]):
        print(item, estimate)
    print("space:", algo.space_bits(), "bits")
"""

from repro.core import (
    SimpleListHeavyHitters,
    OptimalListHeavyHitters,
    EpsilonMaximum,
    EpsilonMinimum,
    ListBorda,
    ListMaximin,
    UnknownLengthHeavyHitters,
    UnknownLengthMaximum,
    UnknownLengthWrapper,
    HeavyHittersReport,
    MaximumResult,
    MinimumResult,
    ScoreReport,
)
from repro.baselines import (
    ExactCounter,
    MisraGries,
    CountMinSketch,
    CountSketch,
    SpaceSaving,
    LossyCounting,
    StickySampling,
)
from repro.primitives import RandomSource, SpaceMeter
from repro.pipeline import ChunkProducer, PipelinedExecutor, PipelinedRunResult
from repro.service import Checkpointer, IngestServer, ServiceClient
from repro.sharding import Mergeable, ShardRouter, ShardedExecutor, ShardedRunResult
from repro.streams import (
    Stream,
    uniform_stream,
    zipfian_stream,
    planted_heavy_hitters_stream,
    planted_maximum_stream,
)
from repro.voting import Ranking, Election, impartial_culture, mallows_votes

__version__ = "1.0.0"

__all__ = [
    "SimpleListHeavyHitters",
    "OptimalListHeavyHitters",
    "EpsilonMaximum",
    "EpsilonMinimum",
    "ListBorda",
    "ListMaximin",
    "UnknownLengthHeavyHitters",
    "UnknownLengthMaximum",
    "UnknownLengthWrapper",
    "HeavyHittersReport",
    "MaximumResult",
    "MinimumResult",
    "ScoreReport",
    "ExactCounter",
    "MisraGries",
    "CountMinSketch",
    "CountSketch",
    "SpaceSaving",
    "LossyCounting",
    "StickySampling",
    "RandomSource",
    "SpaceMeter",
    "Mergeable",
    "ShardRouter",
    "ShardedExecutor",
    "ShardedRunResult",
    "ChunkProducer",
    "PipelinedExecutor",
    "PipelinedRunResult",
    "Checkpointer",
    "IngestServer",
    "ServiceClient",
    "Stream",
    "uniform_stream",
    "zipfian_stream",
    "planted_heavy_hitters_stream",
    "planted_maximum_stream",
    "Ranking",
    "Election",
    "impartial_culture",
    "mallows_votes",
    "__version__",
]
