"""Seeded randomness shared by all randomized data structures.

Every randomized structure in the package receives a :class:`RandomSource` (or derives a
child from one) instead of touching the global :mod:`random` state.  This keeps the
whole reproduction deterministic under a fixed seed, which matters for tests, for the
benchmark harness, and for the lower-bound reductions where Alice and Bob must share
public randomness.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class RandomSource:
    """A thin, seedable wrapper around :class:`random.Random`.

    The wrapper exists for three reasons:

    * child generators (:meth:`spawn`) let a parent algorithm hand independent,
      reproducible randomness to each of its sub-structures (hash functions, samplers,
      repetitions) without them interfering with one another;
    * convenience helpers used throughout the code base (:meth:`bernoulli`,
      :meth:`random_bits`, :meth:`choice_index`) keep call sites short and explicit;
    * it gives a single choke point if one ever wants to swap the underlying generator.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> Optional[int]:
        """The seed this source was created with (``None`` if unseeded)."""
        return self._seed

    def spawn(self, salt: int = 0) -> "RandomSource":
        """Return a new, independent :class:`RandomSource` derived from this one.

        The child is seeded from the parent's stream, offset by ``salt`` so multiple
        children spawned in a loop are distinct even if spawned from the same state.
        """
        child_seed = self._rng.getrandbits(62) ^ (salt * 0x9E3779B97F4A7C15 & ((1 << 62) - 1))
        return RandomSource(child_seed)

    # -- basic draws -------------------------------------------------------------

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def random_bits(self, num_bits: int) -> int:
        """Return a uniformly random integer with ``num_bits`` bits."""
        if num_bits <= 0:
            return 0
        return self._rng.getrandbits(num_bits)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._rng.randint(low, high)

    def choice_index(self, length: int) -> int:
        """Uniform index into a sequence of the given length."""
        if length <= 0:
            raise ValueError("cannot choose an index from an empty sequence")
        return self._rng.randrange(length)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of ``items``."""
        return items[self.choice_index(len(items))]

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements of ``items`` uniformly without replacement."""
        return self._rng.sample(list(items), k)

    def shuffle(self, items: Iterable[T]) -> List[T]:
        """Return a uniformly shuffled copy of ``items``."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def permutation(self, n: int) -> List[int]:
        """Return a uniformly random permutation of ``range(n)``."""
        return self.shuffle(range(n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self._seed!r})"
