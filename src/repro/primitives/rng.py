"""Seeded randomness shared by all randomized data structures.

Every randomized structure in the package receives a :class:`RandomSource` (or derives a
child from one) instead of touching the global :mod:`random` state.  This keeps the
whole reproduction deterministic under a fixed seed, which matters for tests, for the
benchmark harness, and for the lower-bound reductions where Alice and Bob must share
public randomness.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class RandomSource:
    """A thin, seedable wrapper around :class:`random.Random`.

    The wrapper exists for three reasons:

    * child generators (:meth:`spawn`) let a parent algorithm hand independent,
      reproducible randomness to each of its sub-structures (hash functions, samplers,
      repetitions) without them interfering with one another;
    * convenience helpers used throughout the code base (:meth:`bernoulli`,
      :meth:`random_bits`, :meth:`choice_index`) keep call sites short and explicit;
    * it gives a single choke point if one ever wants to swap the underlying generator.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._random: Optional[random.Random] = None
        self._numpy_rng = None

    @property
    def _rng(self) -> random.Random:
        # Seeding a Mersenne Twister costs ~15us; structures that spawn one source per
        # component (e.g. one per accelerated counter) create thousands that the batched
        # ingestion path never draws from, so the generator is built on first use.
        generator = self._random
        if generator is None:
            generator = self._random = random.Random(self._seed)
        return generator

    @property
    def seed(self) -> Optional[int]:
        """The seed this source was created with (``None`` if unseeded)."""
        return self._seed

    # -- pickling ----------------------------------------------------------------
    #
    # A RandomSource pickles as a fresh *seed*, not as the full generator state: an
    # initialized Mersenne Twister weighs ~2.5 KB, and structures like Algorithm 2
    # hold tens of thousands of sources, which would make shipping a sketch to a
    # worker process (repro.sharding's parallel driver) cost tens of megabytes.
    # The copy's seed is derived by hashing the generator's current state — a pure
    # read, so serialization never perturbs the source object: pickling the same
    # source twice yields identical bytes, and the original's future draws are
    # unaffected.  The unpickled copy is deterministic given the original's state and
    # draws a fresh, well-distributed stream — but it does NOT replay the original's
    # future draws bit for bit (two copies of the same state are identical to each
    # other, not to the original's continuation).  The same applies to
    # copy.deepcopy, which dispatches through these hooks: a deepcopied source is a
    # re-seeded sibling, not a bit-exact snapshot.  Every use in this package (ship
    # to a shard worker, ingest, ship back, merge) only needs distributional
    # correctness, which this preserves.

    def __getstate__(self) -> dict:
        if self._random is None:
            return {"seed": self._seed}
        # Hash only the Mersenne Twister word tuple (state[1]): it determines the
        # generator completely, and a tuple of ints hashes identically in every
        # process.  The full getstate() tuple must NOT be hashed — it ends with
        # gauss_next, which can be None, and hash(None) varies per process under
        # ASLR on CPython < 3.12, which would silently break run-to-run
        # reproducibility of the parallel sharded driver.
        return {"seed": hash(self._rng.getstate()[1]) & ((1 << 62) - 1)}

    def __setstate__(self, state: dict) -> None:
        self._seed = state["seed"]
        self._random = None
        self._numpy_rng = None

    def spawn(self, salt: int = 0) -> "RandomSource":
        """Return a new, independent :class:`RandomSource` derived from this one.

        The child is seeded from the parent's stream, offset by ``salt`` so multiple
        children spawned in a loop are distinct even if spawned from the same state.
        """
        child_seed = self._rng.getrandbits(62) ^ (salt * 0x9E3779B97F4A7C15 & ((1 << 62) - 1))
        return RandomSource(child_seed)

    # -- basic draws -------------------------------------------------------------

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def random_bits(self, num_bits: int) -> int:
        """Return a uniformly random integer with ``num_bits`` bits."""
        if num_bits <= 0:
            return 0
        return self._rng.getrandbits(num_bits)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._rng.randint(low, high)

    def geometric(self, probability: float) -> int:
        """Number of Bernoulli(``probability``) trials up to and including the first success.

        The support is ``{1, 2, ...}``: a return of ``g`` means ``g - 1`` failures then a
        success.  Implemented by inverse-CDF from one uniform draw, so a batch of ``m``
        trials at rate ``p`` costs ``O(p*m)`` RNG work instead of ``m`` — the geometric
        skip behind the batched samplers.  ``probability >= 1`` returns ``1`` without
        consuming randomness (matching :meth:`bernoulli`).
        """
        if probability >= 1.0:
            return 1
        if probability <= 0.0:
            raise ValueError("geometric requires a positive probability")
        uniform = self._rng.random()
        return 1 + int(math.log1p(-uniform) / math.log1p(-probability))

    def binomial(self, trials: int, probability: float) -> int:
        """Number of successes among ``trials`` Bernoulli(``probability``) draws.

        Degenerate probabilities consume no randomness; small trial counts use the
        Python generator directly, larger ones a numpy generator derived from this
        source (see :meth:`numpy_generator`), so one call replaces up to ``trials``
        individual coin flips.
        """
        if trials <= 0 or probability <= 0.0:
            return 0
        if probability >= 1.0:
            return trials
        if trials < 32:
            random_draw = self._rng.random
            return sum(random_draw() < probability for _ in range(trials))
        return int(self.numpy_generator().binomial(trials, probability))

    def numpy_generator(self):
        """A numpy :class:`~numpy.random.Generator` seeded from this source, lazily built.

        Bulk draws (vectorized stream generation, binomial counter updates) go through
        this generator; it is created on first use from the Python stream, so the whole
        hierarchy remains deterministic under a fixed seed.
        """
        if self._numpy_rng is None:
            import numpy

            self._numpy_rng = numpy.random.default_rng(self._rng.getrandbits(64))
        return self._numpy_rng

    def choice_index(self, length: int) -> int:
        """Uniform index into a sequence of the given length."""
        if length <= 0:
            raise ValueError("cannot choose an index from an empty sequence")
        return self._rng.randrange(length)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of ``items``."""
        return items[self.choice_index(len(items))]

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements of ``items`` uniformly without replacement."""
        if isinstance(items, (range, list, tuple)):
            return self._rng.sample(items, k)
        return self._rng.sample(list(items), k)

    def shuffle(self, items: Iterable[T]) -> List[T]:
        """Return a uniformly shuffled copy of ``items``."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def permutation(self, n: int) -> List[int]:
        """Return a uniformly random permutation of ``range(n)``."""
        return self.shuffle(range(n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self._seed!r})"
