"""Universal hash families (paper Section 2.4).

The paper uses a universal family ``H = {h : [k] -> [l]}`` in two places:

* Algorithm 1 hashes the ids of the ``O(eps^-2)`` sampled items into a space of size
  ``O(l^2 / delta)`` so that, by Lemma 2, no two sampled items collide and the
  Misra–Gries table can store hashed ids of ``O(log(1/eps) + log(1/delta))`` bits
  instead of ``log n`` bits.
* Algorithm 2 hashes the whole universe into ``[100 / eps]`` buckets so that the
  accelerated counters only need to track ``O(1/eps)`` distinct hashed ids; the error
  introduced by collisions is bounded in expectation by universality (Equation 1).

We implement the classic Carter–Wegman construction ``h(x) = ((a*x + b) mod p) mod l``
with ``p`` a prime larger than the universe and ``a`` drawn uniformly from ``[1, p-1]``,
``b`` from ``[0, p-1]``.  This family is universal (collision probability at most
``1/l``), and describing one function costs ``2 * ceil(log2 p)`` bits, matching the
``O(log n)`` bits the paper charges for storing the hash function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value

# ((a*x + b) mod p) stays inside int64 for every x < p as long as p*(p-1) + (p-1) < 2^63;
# any prime below 2^31 satisfies this with room to spare.
_INT64_SAFE_PRIME = 1 << 31


def _is_prime(candidate: int) -> bool:
    """Deterministic Miller–Rabin primality test, exact for 64-bit-ish inputs."""
    if candidate < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if candidate % p == 0:
            return candidate == p
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def next_prime(lower_bound: int) -> int:
    """Smallest prime ``p >= lower_bound``."""
    candidate = max(2, lower_bound)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


@dataclass(frozen=True)
class UniversalHashFunction:
    """A single Carter–Wegman hash function ``x -> ((a*x + b) mod p) mod range_size``."""

    multiplier: int
    offset: int
    prime: int
    range_size: int

    def __call__(self, item: int) -> int:
        if item < 0:
            raise ValueError("hash input must be a non-negative integer")
        return ((self.multiplier * item + self.offset) % self.prime) % self.range_size

    def hash_many(self, items: "np.ndarray") -> "np.ndarray":
        """Vectorized evaluation: ``((a*x + b) mod p) mod range_size`` over an array.

        Produces exactly the same values as calling the function item by item.  When the
        prime is small enough for the arithmetic to stay inside int64 the whole
        computation is one numpy expression; for the huge primes Algorithm 1 uses for id
        hashing (``p ~ poly(eps^-2, delta^-1)``) the multiply would overflow, so the
        computation falls back to Python big integers element-wise — callers therefore
        want to hash *distinct* ids with their multiplicities rather than raw batches.
        """
        array = np.asarray(items, dtype=np.int64)
        if array.size == 0:
            return array.copy()
        if array.min() < 0:
            raise ValueError("hash input must be a non-negative integer")
        if self.prime < _INT64_SAFE_PRIME and int(array.max()) < self.prime:
            return ((self.multiplier * array + self.offset) % self.prime) % self.range_size
        mixed = (self.multiplier * array.astype(object) + self.offset) % self.prime % self.range_size
        return mixed.astype(np.int64)

    def description_bits(self) -> int:
        """Bits needed to store this function (the pair ``(a, b)`` modulo ``p``)."""
        return 2 * bits_for_value(self.prime - 1)


class UniversalHashFamily:
    """A universal family ``{h : [universe_size] -> [range_size]}``.

    Drawing a function uniformly at random from the family costs
    ``2 * ceil(log2 p) = O(log universe_size)`` bits to remember, which is the cost the
    paper charges in Algorithm 1 ("picking a hash function h uniformly at random from H
    can be done using O(log n) bits of space").
    """

    def __init__(self, universe_size: int, range_size: int, rng: Optional[RandomSource] = None) -> None:
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        if range_size <= 0:
            raise ValueError("range_size must be positive")
        self.universe_size = universe_size
        self.range_size = range_size
        self.prime = next_prime(max(universe_size, range_size, 2))
        self._rng = rng if rng is not None else RandomSource()

    def draw(self) -> UniversalHashFunction:
        """Draw one hash function uniformly at random from the family."""
        multiplier = self._rng.randint(1, self.prime - 1)
        offset = self._rng.randint(0, self.prime - 1)
        return UniversalHashFunction(
            multiplier=multiplier,
            offset=offset,
            prime=self.prime,
            range_size=self.range_size,
        )

    def draw_many(self, count: int) -> list:
        """Draw ``count`` independent functions from the family."""
        return [self.draw() for _ in range(count)]

    def collision_probability(self) -> float:
        """Upper bound on ``Pr[h(a) = h(b)]`` for distinct ``a, b`` (Definition 2)."""
        return 1.0 / self.range_size
