"""Bit-level space accounting.

The quantity Table 1 of the paper bounds is the number of *bits of working memory* a
streaming algorithm keeps between stream updates, in the unit-cost RAM model with
``O(log n)``-bit words.  CPython objects carry large constant overheads (a small ``int``
costs 28 bytes), so ``sys.getsizeof`` would say nothing about the quantity the paper is
about.  Instead, every data structure in this package *declares* how many bits it is
entitled to under its own invariants — e.g. a Misra–Gries table with ``k`` entries over a
universe of size ``n`` and stream length ``m`` declares ``k * (ceil(log2 n) +
ceil(log2 (m+1)))`` bits — and a :class:`SpaceMeter` aggregates those declarations per
component.

This is exactly the accounting the paper itself performs when it says, for example, that
table ``T1`` of Algorithm 1 stores keys in ``[0, 400 l^2 / delta]`` and values in
``[0, 11 l]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple


def bits_for_value(value: int) -> int:
    """Number of bits needed to write down the non-negative integer ``value``.

    ``bits_for_value(0) == 1`` by convention (a counter that can only hold zero still
    occupies one bit of addressable state).
    """
    if value < 0:
        raise ValueError("bits_for_value expects a non-negative integer")
    if value <= 1:
        return 1
    return int(math.ceil(math.log2(value + 1)))


def bits_for_range(num_values: int) -> int:
    """Number of bits needed to index one of ``num_values`` distinct values."""
    if num_values <= 0:
        raise ValueError("bits_for_range expects a positive count of values")
    if num_values == 1:
        return 1
    return int(math.ceil(math.log2(num_values)))


@dataclass
class SpaceMeter:
    """Aggregates per-component bit counts for a streaming data structure.

    Components are named so benchmark output can break space down the same way the
    paper's analysis does (sampler, hash function description, table T1, table T2, ...).

    The meter distinguishes *current* usage (what the structure holds right now) from
    *peak* usage (the maximum ever held), because several algorithms in the paper bound
    expected space and abort if a run exceeds its budget; peak usage is what such a
    budget must cover.
    """

    components: Dict[str, int] = field(default_factory=dict)
    _peak_components: Dict[str, int] = field(default_factory=dict)

    def set_component(self, name: str, bits: int) -> None:
        """Set the current bit count of a named component."""
        if bits < 0:
            raise ValueError(f"component {name!r} cannot use a negative number of bits")
        self.components[name] = bits
        if bits > self._peak_components.get(name, 0):
            self._peak_components[name] = bits

    def add_component(self, name: str, bits: int) -> None:
        """Add ``bits`` to a named component (creating it at zero if absent)."""
        self.set_component(name, self.components.get(name, 0) + bits)

    def get_component(self, name: str) -> int:
        """Current bit count of a component (zero if never set)."""
        return self.components.get(name, 0)

    def total_bits(self) -> int:
        """Total current space in bits across all components."""
        return sum(self.components.values())

    def peak_bits(self) -> int:
        """Total peak space in bits (sum of per-component peaks)."""
        return sum(self._peak_components.values())

    def peak_component(self, name: str) -> int:
        """Peak bit count of a single component."""
        return self._peak_components.get(name, 0)

    def breakdown(self) -> Mapping[str, int]:
        """A read-only snapshot of the current per-component usage."""
        return dict(self.components)

    def merge(self, other: "SpaceMeter", prefix: str = "") -> None:
        """Fold another meter's components into this one, optionally prefixed."""
        for name, bits in other.components.items():
            self.add_component(prefix + name, bits)
        for name, bits in other._peak_components.items():
            key = prefix + name
            if bits > self._peak_components.get(key, 0):
                self._peak_components[key] = bits

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.components.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpaceMeter(total={self.total_bits()} bits, components={self.components})"
