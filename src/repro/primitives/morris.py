"""Morris approximate counting (paper Section 3.5, [Mor78], [Fla85]).

When the stream length ``m`` is not known in advance, the paper's Theorem 7 keeps a
Morris counter to approximate the current position within a constant factor using
``O(log log m + k)`` bits (error probability ``2^{-k/2}``).  The doubling/restart wrapper
in :mod:`repro.core.unknown_length` consults this counter to decide when to retire one
instance of the base algorithm and start the next.

A Morris counter stores only an exponent ``X``; on each increment the exponent grows
with probability ``2^{-X}``, and the estimate of the true count is ``2^X - 1``.  The
estimate is unbiased and concentrates within a constant factor; averaging several
independent counters sharpens the constant.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class MorrisCounter:
    """A single Morris approximate counter.

    ``repetitions`` independent counters can be averaged to reduce variance; the paper
    drives the failure probability down by choosing ``k = 2 log2(log2(m)/delta)`` extra
    bits, which in our implementation corresponds to using a handful of repetitions.
    """

    def __init__(self, rng: Optional[RandomSource] = None, repetitions: int = 1) -> None:
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self._rng = rng if rng is not None else RandomSource()
        self.repetitions = repetitions
        self.exponents = [0] * repetitions
        self.true_count = 0  # kept only for testing/diagnostics, not charged as space

    def increment(self) -> None:
        """Register one new stream item."""
        self.true_count += 1
        for index in range(self.repetitions):
            exponent = self.exponents[index]
            if self._rng.bernoulli(2.0 ** (-exponent)):
                self.exponents[index] = exponent + 1

    def advance_until_change(self, max_steps: int) -> Tuple[int, bool]:
        """Advance up to ``max_steps`` increments, stopping at the first estimate change.

        Returns ``(steps_consumed, changed)``: if ``changed`` is true, exactly
        ``steps_consumed <= max_steps`` increments were absorbed and the *last* one
        bumped at least one repetition's exponent (so :meth:`estimate` just moved);
        otherwise all ``max_steps`` increments were absorbed with no exponent change.

        Distributionally identical to ``steps_consumed`` calls of :meth:`increment`:
        each repetition's waiting time until its next exponent bump is geometric with
        its current rate ``2^-X``, so one geometric draw per repetition replaces up to
        ``max_steps`` coin flips — and because geometrics are memoryless, stopping at
        ``max_steps`` without a change discards no information.  Repetitions whose
        draws tie with the minimum all bump on the same step, exactly as simultaneous
        per-item coin flips would.  This is what lets the unknown-length wrapper's
        batched ingestion split batches at the (stochastic) restart boundaries without
        per-item RNG work.
        """
        if max_steps <= 0:
            return 0, False
        waits = []
        for index in range(self.repetitions):
            exponent = self.exponents[index]
            if exponent == 0:
                waits.append(1)  # probability 1: bumps on the very next increment
            else:
                waits.append(self._rng.geometric(2.0 ** (-exponent)))
        first = min(waits)
        if first > max_steps:
            self.true_count += max_steps
            return max_steps, False
        self.true_count += first
        for index, wait in enumerate(waits):
            if wait == first:
                self.exponents[index] += 1
        return first, True

    def estimate(self) -> float:
        """Unbiased estimate of the number of increments seen so far."""
        estimates = [(2.0 ** exponent) - 1.0 for exponent in self.exponents]
        return sum(estimates) / len(estimates)

    def space_bits(self) -> int:
        """Bits of state: each counter stores only its exponent, i.e. ``O(log log m)``."""
        return sum(max(1, bits_for_value(exponent)) for exponent in self.exponents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MorrisCounter(estimate={self.estimate():.1f}, exponents={self.exponents})"
