"""Morris approximate counting (paper Section 3.5, [Mor78], [Fla85]).

When the stream length ``m`` is not known in advance, the paper's Theorem 7 keeps a
Morris counter to approximate the current position within a constant factor using
``O(log log m + k)`` bits (error probability ``2^{-k/2}``).  The doubling/restart wrapper
in :mod:`repro.core.unknown_length` consults this counter to decide when to retire one
instance of the base algorithm and start the next.

A Morris counter stores only an exponent ``X``; on each increment the exponent grows
with probability ``2^{-X}``, and the estimate of the true count is ``2^X - 1``.  The
estimate is unbiased and concentrates within a constant factor; averaging several
independent counters sharpens the constant.
"""

from __future__ import annotations

from typing import Optional

from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class MorrisCounter:
    """A single Morris approximate counter.

    ``repetitions`` independent counters can be averaged to reduce variance; the paper
    drives the failure probability down by choosing ``k = 2 log2(log2(m)/delta)`` extra
    bits, which in our implementation corresponds to using a handful of repetitions.
    """

    def __init__(self, rng: Optional[RandomSource] = None, repetitions: int = 1) -> None:
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self._rng = rng if rng is not None else RandomSource()
        self.repetitions = repetitions
        self.exponents = [0] * repetitions
        self.true_count = 0  # kept only for testing/diagnostics, not charged as space

    def increment(self) -> None:
        """Register one new stream item."""
        self.true_count += 1
        for index in range(self.repetitions):
            exponent = self.exponents[index]
            if self._rng.bernoulli(2.0 ** (-exponent)):
                self.exponents[index] = exponent + 1

    def estimate(self) -> float:
        """Unbiased estimate of the number of increments seen so far."""
        estimates = [(2.0 ** exponent) - 1.0 for exponent in self.exponents]
        return sum(estimates) / len(estimates)

    def space_bits(self) -> int:
        """Bits of state: each counter stores only its exponent, i.e. ``O(log log m)``."""
        return sum(max(1, bits_for_value(exponent)) for exponent in self.exponents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MorrisCounter(estimate={self.estimate():.1f}, exponents={self.exponents})"
