"""Shared helpers for the batched (``insert_many``) ingestion fast path.

Every batched override follows the same preamble: normalize the incoming batch to a
contiguous int64 numpy array, bounds-check it against the universe in one vectorized
pass, and (usually) pre-aggregate it into ``(distinct ids, multiplicities)`` so the
per-id work is paid once per *distinct* id instead of once per arrival.  These helpers
keep that preamble identical across the eight sketches.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np


def as_item_array(items: Sequence[int]) -> np.ndarray:
    """Normalize a batch of stream items to a 1-D int64 numpy array.

    Already-int64 arrays (the backing of :class:`~repro.streams.stream.Stream`) pass
    through without a copy.
    """
    array = np.asarray(items)
    if array.dtype != np.int64:
        array = array.astype(np.int64)
    if array.ndim != 1:
        array = np.atleast_1d(array).reshape(-1)
    return array


def validate_universe(array: np.ndarray, universe_size: int) -> None:
    """Vectorized version of the per-item universe check, same error message."""
    if array.size == 0:
        return
    if int(array.min()) < 0 or int(array.max()) >= universe_size:
        offending = array[(array < 0) | (array >= universe_size)]
        item = int(offending[0])
        raise ValueError(f"item {item} outside universe [0, {universe_size})")


def aggregate_counts(array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct ids and their multiplicities, sorted by id (one C-speed pass)."""
    return np.unique(array, return_counts=True)


def iter_chunks(items: Iterable[int], chunk_size: int) -> Iterator[np.ndarray]:
    """Split a stream (array-backed or plain iterable) into int64 array chunks.

    Array-backed input (a :class:`~repro.streams.stream.Stream` or a numpy array) is
    sliced without copying; a plain iterable is buffered ``chunk_size`` items at a
    time.  Every yielded chunk except possibly the last has exactly ``chunk_size``
    items, and their concatenation is exactly the input sequence.

    Args:
        items: the stream — a ``Stream``, a numpy array, or any iterable of ints.
        chunk_size: items per yielded chunk; must be positive.

    Raises:
        ValueError: if ``chunk_size`` is not positive.

    >>> [chunk.tolist() for chunk in iter_chunks([1, 2, 3, 4, 5], 2)]
    [[1, 2], [3, 4], [5]]
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    backing = getattr(items, "array", None)
    if backing is None and isinstance(items, np.ndarray):
        backing = items
    if backing is not None:
        for start in range(0, len(backing), chunk_size):
            yield as_item_array(backing[start : start + chunk_size])
        return
    buffer = []
    for item in items:
        buffer.append(item)
        if len(buffer) >= chunk_size:
            yield as_item_array(buffer)
            buffer = []
    if buffer:
        yield as_item_array(buffer)


def rechunk_arrays(arrays: Iterable[Sequence[int]], chunk_size: int) -> Iterator[np.ndarray]:
    """Re-chunk an iterable of item arrays into exact ``chunk_size`` boundaries.

    The network ingest path receives item batches whose sizes are chosen by the
    *client* (whatever each PUSH frame carried), but bit-for-bit equivalence with an
    offline chunked replay requires the *sketches* to see the same chunk boundaries
    as :func:`iter_chunks` over the concatenated sequence.  This helper restores
    those boundaries: incoming arrays are split/coalesced so that every yielded
    chunk except possibly the last has exactly ``chunk_size`` items, and the
    concatenation of the yielded chunks equals the concatenation of the inputs.

    Zero-length input arrays are skipped; yielded chunks are int64.  When the
    staging buffer is empty and an input array covers one or more whole chunks,
    those chunks are yielded as zero-copy *views* of the input; fragments that
    straddle a boundary land exactly once in a preallocated ``chunk_size``-sized
    staging buffer — there is no fragment list and no ``np.concatenate`` pass
    per boundary.  Each assembled chunk is handed off and a fresh buffer takes
    its place rather than being reused in a ring, because the consumers of this
    generator (the pipelined ingest queue) legitimately hold several yielded
    chunks at once; reusing the buffer would overwrite chunks still in flight.

    Args:
        arrays: an iterable of item batches (numpy arrays or any sequences of ints).
        chunk_size: items per yielded chunk; must be positive.

    Raises:
        ValueError: if ``chunk_size`` is not positive.

    >>> batches = [[1, 2, 3], [4], [], [5, 6, 7, 8, 9]]
    >>> [chunk.tolist() for chunk in rechunk_arrays(batches, 4)]
    [[1, 2, 3, 4], [5, 6, 7, 8], [9]]
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    buffer = np.empty(chunk_size, dtype=np.int64)  # staging for boundary-straddlers
    held = 0
    # repro: lint-ignore[hot-path] -- iterates per input *array* (one batch each), not per item; each array is then staged with vectorized slice copies
    for array in arrays:
        array = as_item_array(array)
        size = int(array.size)
        start = 0
        if held:
            take = min(chunk_size - held, size)
            buffer[held : held + take] = array[:take]
            held += take
            start = take
            if held == chunk_size:
                yield buffer
                buffer = np.empty(chunk_size, dtype=np.int64)
                held = 0
            else:
                continue  # the whole input fit below one boundary
        # Staging is empty here: whole chunks stream through as uncopied views.
        while size - start >= chunk_size:
            yield array[start : start + chunk_size]
            start += chunk_size
        if start < size:
            held = size - start
            buffer[:held] = array[start:]
    if held:
        yield buffer[:held]
