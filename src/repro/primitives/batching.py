"""Shared helpers for the batched (``insert_many``) ingestion fast path.

Every batched override follows the same preamble: normalize the incoming batch to a
contiguous int64 numpy array, bounds-check it against the universe in one vectorized
pass, and (usually) pre-aggregate it into ``(distinct ids, multiplicities)`` so the
per-id work is paid once per *distinct* id instead of once per arrival.  These helpers
keep that preamble identical across the eight sketches.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np


def as_item_array(items: Sequence[int]) -> np.ndarray:
    """Normalize a batch of stream items to a 1-D int64 numpy array.

    Already-int64 arrays (the backing of :class:`~repro.streams.stream.Stream`) pass
    through without a copy.
    """
    array = np.asarray(items)
    if array.dtype != np.int64:
        array = array.astype(np.int64)
    if array.ndim != 1:
        array = np.atleast_1d(array).reshape(-1)
    return array


def validate_universe(array: np.ndarray, universe_size: int) -> None:
    """Vectorized version of the per-item universe check, same error message."""
    if array.size == 0:
        return
    if int(array.min()) < 0 or int(array.max()) >= universe_size:
        offending = array[(array < 0) | (array >= universe_size)]
        item = int(offending[0])
        raise ValueError(f"item {item} outside universe [0, {universe_size})")


def aggregate_counts(array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct ids and their multiplicities, sorted by id (one C-speed pass)."""
    return np.unique(array, return_counts=True)


def iter_chunks(items: Iterable[int], chunk_size: int) -> Iterator[np.ndarray]:
    """Split a stream (array-backed or plain iterable) into int64 array chunks."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    backing = getattr(items, "array", None)
    if backing is None and isinstance(items, np.ndarray):
        backing = items
    if backing is not None:
        for start in range(0, len(backing), chunk_size):
            yield as_item_array(backing[start : start + chunk_size])
        return
    buffer = []
    for item in items:
        buffer.append(item)
        if len(buffer) >= chunk_size:
            yield as_item_array(buffer)
            buffer = []
    if buffer:
        yield as_item_array(buffer)
