"""Integer counters with explicit space semantics (paper Sections 2.3, 3.3).

Three kinds of counters appear in the paper:

* **Variable-length counters** ([BB08], Section 2.3): an integer ``C`` is stored in
  ``O(log C)`` bits and supports constant-time reads and updates.  We model the space
  cost exactly (``bits_for_value(C)``) and the behaviour as a plain integer.
* **Truncated counters** (Algorithm 3, line 11): counts are capped at a threshold known
  to exceed the minimum frequency, so each counter needs only ``O(log threshold)`` =
  ``O(log log (1/eps*delta))``-ish bits.  Reads above the cap return the cap.
* **Saturating counters** — a generic bounded counter used by some baselines.
"""

from __future__ import annotations

from repro.primitives.space import bits_for_value


class VariableLengthCounter:
    """An exact counter whose declared space is ``O(log C)`` bits (paper [BB08])."""

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError("counter value cannot be negative")
        self.value = initial

    def increment(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("use decrement() for negative updates")
        self.value += amount
        return self.value

    def decrement(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("decrement amount must be non-negative")
        self.value = max(0, self.value - amount)
        return self.value

    def space_bits(self) -> int:
        return bits_for_value(self.value)

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"VariableLengthCounter({self.value})"


class TruncatedCounter:
    """A counter truncated at a cap (Algorithm 3: "Truncate counters of S3 at 2 log^7(2/eps*delta)").

    The point of truncation is purely space: values at or above the cap are irrelevant to
    the minimum-frequency question, so the counter never needs more than
    ``ceil(log2(cap+1))`` bits.
    """

    def __init__(self, cap: int, initial: int = 0) -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        if initial < 0:
            raise ValueError("counter value cannot be negative")
        self.cap = cap
        self.value = min(initial, cap)

    def increment(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("increment amount must be non-negative")
        self.value = min(self.cap, self.value + amount)
        return self.value

    @property
    def is_saturated(self) -> bool:
        return self.value >= self.cap

    def space_bits(self) -> int:
        return bits_for_value(self.cap)

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"TruncatedCounter({self.value}/{self.cap})"


class SaturatingCounter(TruncatedCounter):
    """Alias with decrement support, used by baseline data structures."""

    def decrement(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("decrement amount must be non-negative")
        self.value = max(0, self.value - amount)
        return self.value
