"""Stream samplers (paper Lemma 1 and Lemma 3).

Lemma 1 of the paper shows that choosing an item with probability ``1/m`` (``m`` a power
of two) can be done with ``O(log log m)`` bits of state: draw ``log2 m`` random bits and
select the item iff they are all zero.  :class:`CoinFlipSampler` implements exactly this,
and only stores the *number* of bits to draw, which needs ``ceil(log2 log2 m)`` bits.

Lemma 3 (a DKW-style uniform-convergence statement) says that if we sample each stream
position independently with rate ``r/m`` for ``r >= 2 eps^-2 log(2/delta)``, then with
probability ``1 - delta`` every item's relative frequency in the sample is within ``eps``
of its relative frequency in the stream.  :class:`BernoulliSampler` is the per-item
sampler the algorithms use for this, and :class:`FixedSizeSampler`/
:class:`ReservoirSampler` are the classic alternatives used by tests and baselines.
"""

from __future__ import annotations

import math
from typing import Generic, Iterable, List, Optional, Sequence, TypeVar

from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value

T = TypeVar("T")


def round_down_to_power_of_two_probability(probability: float) -> float:
    """Replace ``p`` by the largest ``p' <= p`` with ``1/p'`` a power of two.

    The paper (footnote 3) assumes without loss of generality that every sampling
    probability has a power-of-two reciprocal; this helper performs that rounding.
    Probabilities ``>= 1`` are returned as ``1.0``; non-positive probabilities raise.
    """
    if probability <= 0.0:
        raise ValueError("probability must be positive")
    if probability >= 1.0:
        return 1.0
    exponent = math.ceil(math.log2(1.0 / probability))
    return 1.0 / (2 ** exponent)


class CoinFlipSampler:
    """Select an event with probability ``2^-k`` using ``O(log k)`` bits of state.

    This is the sampler of Lemma 1: to decide whether the current stream item is
    sampled, draw ``k`` fair coins and accept iff all come up heads.  The only state
    kept between stream items is ``k`` itself, i.e. ``O(log log m)`` bits when the
    probability is ``1/m``.
    """

    def __init__(self, probability: float, rng: Optional[RandomSource] = None) -> None:
        if probability <= 0.0 or probability > 1.0:
            raise ValueError("probability must be in (0, 1]")
        rounded = round_down_to_power_of_two_probability(probability)
        self.probability = rounded
        self.num_coins = 0 if rounded >= 1.0 else int(round(math.log2(1.0 / rounded)))
        self._rng = rng if rng is not None else RandomSource()

    def decide(self) -> bool:
        """Return ``True`` iff the current item is selected."""
        if self.num_coins == 0:
            return True
        return self._rng.random_bits(self.num_coins) == 0

    def next_accepted(self, batch_len: int) -> Optional[int]:
        """Offset in ``[0, batch_len)`` of the first accepted item among the next
        ``batch_len`` arrivals, or ``None`` if all of them are rejected.

        Distributionally equivalent to calling :meth:`decide` once per arrival and
        returning the index of the first ``True``, but costs a single geometric draw
        (Lemma 1's coins, skipped ahead in one jump).  Because Bernoulli trials are
        memoryless, rejecting a whole batch carries no state into the next call.  Note
        the RNG *consumption order* differs from per-item :meth:`decide` calls, so
        batched and per-item runs of the same seed diverge (by design; see the
        ``insert_many`` contract in :mod:`repro.core.base`).
        """
        if batch_len <= 0:
            return None
        if self.num_coins == 0:
            return 0
        gap = self._rng.geometric(self.probability)
        return gap - 1 if gap <= batch_len else None

    def accepted_indices(self, batch_len: int) -> List[int]:
        """Indices of all accepted items among the next ``batch_len`` arrivals.

        Built on :meth:`next_accepted`, so the expected RNG work is
        ``O(probability * batch_len + 1)`` — for the paper's ``l/m`` sampling rates this
        is what turns the O(1) amortized update claim into practice: almost every
        arrival is skipped without touching the generator.
        """
        indices: List[int] = []
        if batch_len <= 0:
            return indices
        if self.num_coins == 0:
            return list(range(batch_len))
        position = 0
        while position < batch_len:
            offset = self.next_accepted(batch_len - position)
            if offset is None:
                break
            position += offset
            indices.append(position)
            position += 1
        return indices

    def space_bits(self) -> int:
        """Bits of state kept between items: the counter length ``k``."""
        return max(1, bits_for_value(self.num_coins))


class BernoulliSampler(Generic[T]):
    """Sample each stream item independently with a fixed rate and retain the sample.

    The retained sample is what Algorithm 1 and Algorithm 3 call ``S`` / ``S1``/``S2``/
    ``S3``.  The sampler charges space for the decision state (via an internal
    :class:`CoinFlipSampler`) but *not* for the retained items — the caller decides how
    the sampled items are stored (hashed ids, counters, bit vector, ...) and accounts
    for that storage itself.
    """

    def __init__(
        self,
        probability: float,
        rng: Optional[RandomSource] = None,
        keep_items: bool = True,
    ) -> None:
        self._coin = CoinFlipSampler(probability, rng=rng)
        self.probability = self._coin.probability
        self.keep_items = keep_items
        self.items: List[T] = []
        self.sample_size = 0
        self.stream_length = 0

    def offer(self, item: T) -> bool:
        """Present one stream item; returns ``True`` iff it was sampled."""
        self.stream_length += 1
        if self._coin.decide():
            self.sample_size += 1
            if self.keep_items:
                self.items.append(item)
            return True
        return False

    def extend(self, items: Iterable[T]) -> int:
        """Offer every item of an iterable; returns the number sampled."""
        before = self.sample_size
        for item in items:
            self.offer(item)
        return self.sample_size - before

    def offer_many(self, items: Sequence[T]) -> List[T]:
        """Offer a whole batch at once and return the items that were sampled.

        Uses the coin sampler's geometric skip (:meth:`CoinFlipSampler.accepted_indices`)
        so the cost is proportional to the number of *sampled* items, not the batch
        length.  Statistically equivalent to :meth:`extend`, but consumes the RNG in a
        different order.
        """
        self.stream_length += len(items)
        sampled = [items[index] for index in self._coin.accepted_indices(len(items))]
        self.sample_size += len(sampled)
        if self.keep_items:
            self.items.extend(sampled)
        return sampled

    def expected_sample_size(self, stream_length: int) -> float:
        """Expected number of sampled items for a stream of the given length."""
        return self.probability * stream_length

    def decision_space_bits(self) -> int:
        """Bits of state used purely to make sampling decisions (Lemma 1)."""
        return self._coin.space_bits()


class ReservoirSampler(Generic[T]):
    """Classic reservoir sampling of a fixed number of items (uniform without replacement).

    Not used by the paper's algorithms directly (they prefer Bernoulli sampling so the
    sample size concentrates by Chernoff), but used by baselines and by tests as an
    alternative way of producing a representative sample.
    """

    def __init__(self, capacity: int, rng: Optional[RandomSource] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.reservoir: List[T] = []
        self.stream_length = 0
        self._rng = rng if rng is not None else RandomSource()

    def offer(self, item: T) -> None:
        """Present one stream item."""
        self.stream_length += 1
        if len(self.reservoir) < self.capacity:
            self.reservoir.append(item)
            return
        slot = self._rng.randint(0, self.stream_length - 1)
        if slot < self.capacity:
            self.reservoir[slot] = item

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)


class FixedSizeSampler(Generic[T]):
    """Draw a uniform sample of a target size from a stream of *known* length.

    Used by the Borda / Maximin algorithms, which fix the sample size ``l`` up front
    (Theorems 5 and 6) and sample each vote with probability ``~ l / m``.
    """

    def __init__(
        self,
        target_size: int,
        stream_length: int,
        rng: Optional[RandomSource] = None,
        oversample_factor: float = 6.0,
    ) -> None:
        if target_size <= 0:
            raise ValueError("target_size must be positive")
        if stream_length <= 0:
            raise ValueError("stream_length must be positive")
        probability = min(1.0, oversample_factor * target_size / stream_length)
        self.target_size = target_size
        self.sampler: BernoulliSampler[T] = BernoulliSampler(probability, rng=rng)

    def offer(self, item: T) -> bool:
        return self.sampler.offer(item)

    @property
    def items(self) -> List[T]:
        return self.sampler.items

    @property
    def sample_size(self) -> int:
        return self.sampler.sample_size

    def decision_space_bits(self) -> int:
        return self.sampler.decision_space_bits()


def recommended_sample_size(epsilon: float, delta: float) -> int:
    """Sample size from Lemma 3: ``r >= 2 eps^-2 log(2/delta)`` preserves all frequencies.

    The algorithms use ``6 eps^-2 log(6/delta)`` for slack in the union bounds; we expose
    the same constant so callers match the paper's parameterization.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    return int(math.ceil(6.0 * math.log(6.0 / delta) / (epsilon * epsilon)))
