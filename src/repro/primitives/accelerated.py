"""Accelerated (epoch-based probabilistic) counters — the heart of Algorithm 2.

The optimal heavy hitters algorithm needs to count the sampled frequency of each of
``O(1/eps)`` hashed ids with additive error ``O(eps * s)`` using only ``O(1)`` bits per
id in expectation.  The paper's device is the *accelerated counter*: increment a counter
with a probability that grows (accelerates) with the running estimate of the count, and
correct for the probability when reading the counter back.

Two classes are provided:

* :class:`AcceleratedCounter` — a single fixed-probability probabilistic counter
  (increment with probability ``p``; estimate is ``count / p``).  This is the
  pedagogical building block described in the overview of Section 3.1.2; its estimate is
  unbiased with variance ``f / p``.
* :class:`EpochAcceleratedCounter` — the full epoch-structured counter of Algorithm 2
  lines 14–17 and 23, i.e. the per-(bucket, repetition) slice of the paper's tables
  ``T2`` and ``T3``:

  - ``subsample_count`` (the paper's ``T2[i, j]``) counts an ``eps``-rate subsample of
    the bucket's arrivals (line 14); ``subsample_count / eps`` is a running constant-
    factor approximation of the bucket's frequency (Claim 1).
  - ``epoch_counts[t]`` (the paper's ``T3[i, j, t]``) counts arrivals assigned to epoch
    ``t = floor(log2(epoch_scale * T2[i,j]^2))`` and accepted with probability
    ``min(eps * 2^t, 1)`` (lines 15–17).  Arrivals whose epoch is negative are not
    recorded at all — exactly as in the paper, this loses only the first
    ``O(1/(eps * sqrt(epoch_scale)))`` occurrences, which is within the error budget.

  The frequency estimate is ``sum_t epoch_counts[t] / min(eps * 2^t, 1)`` (line 23).

The paper sets ``epoch_scale = 1e-6`` because its sampled stream has
``l = 1e5 * eps^-2`` items; with the practically sized samples this reproduction uses
(``~1e2 * eps^-2``), the same role is played by ``epoch_scale = 1.0`` (the default
here), which keeps the uncounted prefix at ``O(1/eps)`` arrivals — well within the
``O(eps * sample)`` additive budget.  Both settings are exercised by the tests.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class AcceleratedCounter:
    """Increment with a fixed probability ``p``; estimate the true count as ``c / p``."""

    def __init__(self, probability: float, rng: Optional[RandomSource] = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.count = 0
        self._rng = rng if rng is not None else RandomSource()

    def offer(self) -> None:
        """Register one occurrence of the item."""
        if self._rng.bernoulli(self.probability):
            self.count += 1

    def offer_many(self, occurrences: int) -> None:
        """Register many occurrences at once: one binomial draw replaces the coin flips.

        Distributionally identical to calling :meth:`offer` ``occurrences`` times (the
        counter's law depends only on the number of occurrences), but O(1) RNG work.
        """
        if occurrences < 0:
            raise ValueError("occurrences must be non-negative")
        self.count += self._rng.binomial(occurrences, self.probability)

    def estimate(self) -> float:
        """Unbiased estimate of the number of occurrences offered."""
        return self.count / self.probability

    def space_bits(self) -> int:
        return max(1, bits_for_value(self.count))


class EpochAcceleratedCounter:
    """The epoch-structured accelerated counter of Algorithm 2 (T2/T3 for one bucket)."""

    def __init__(
        self,
        epsilon: float,
        rng: Optional[RandomSource] = None,
        epoch_scale: float = 1.0,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if epoch_scale <= 0.0:
            raise ValueError("epoch_scale must be positive")
        self.epsilon = epsilon
        self.epoch_scale = epoch_scale
        self.subsample_count = 0
        self.epoch_counts: Dict[int, int] = {}
        self._rng = rng if rng is not None else RandomSource()

    def current_epoch(self) -> int:
        """Epoch assigned to an arriving occurrence (Algorithm 2 line 15); -1 if inactive."""
        if self.subsample_count <= 0:
            return -1
        value = self.epoch_scale * float(self.subsample_count) ** 2
        if value < 1.0:
            return -1
        return int(math.floor(math.log2(value)))

    def increment_probability(self, epoch: int) -> float:
        """The acceptance probability of epoch ``t`` (Algorithm 2 line 15)."""
        if epoch < 0:
            return 0.0
        return min(self.epsilon * (2.0 ** epoch), 1.0)

    def offer(self) -> None:
        """Register one occurrence of the hashed id (Algorithm 2 lines 14-17)."""
        # Line 14: with probability eps, increment T2[i, j].
        if self._rng.bernoulli(self.epsilon):
            self.subsample_count += 1
        # Lines 15-17: epoch assignment and probabilistic increment of T3[i, j, t].
        epoch = self.current_epoch()
        if epoch < 0:
            return
        if self._rng.bernoulli(self.increment_probability(epoch)):
            self.epoch_counts[epoch] = self.epoch_counts.get(epoch, 0) + 1

    def offer_many(self, occurrences: int) -> None:
        """Register a run of occurrences at once (batched Algorithm 2 lines 14-17).

        The per-occurrence process is a Markov chain whose epoch only changes when the
        ``T2`` subsample counter increments, so a batch decomposes into runs ending at a
        ``T2`` increment: the run length is geometric with rate ``eps``, the ``T3``
        increments within a run are binomial at the run's (fixed) epoch probability, and
        the occurrence that bumps ``T2`` is re-evaluated at the *new* epoch — exactly
        the order :meth:`offer` uses.  The result is distributionally identical to
        ``occurrences`` calls of :meth:`offer` while doing ``O(eps * occurrences + 1)``
        RNG work, which is what makes the batched ingestion path of
        :class:`~repro.core.heavy_hitters_optimal.OptimalListHeavyHitters` fast.
        """
        if occurrences < 0:
            raise ValueError("occurrences must be non-negative")
        remaining = occurrences
        while remaining > 0:
            gap = self._rng.geometric(self.epsilon)
            if gap > remaining:
                # No T2 increment in the rest of the batch: every remaining occurrence
                # sees the current epoch.
                self._record_run(self.current_epoch(), remaining)
                return
            # gap - 1 occurrences at the old epoch, then the occurrence whose T2 coin
            # came up heads, whose T3 coin is tossed at the updated epoch.
            self._record_run(self.current_epoch(), gap - 1)
            self.subsample_count += 1
            epoch = self.current_epoch()
            if epoch >= 0 and self._rng.bernoulli(self.increment_probability(epoch)):
                self.epoch_counts[epoch] = self.epoch_counts.get(epoch, 0) + 1
            remaining -= gap

    def offer_many_given_successes(self, occurrences: int, successes: int) -> None:
        """Absorb ``occurrences`` arrivals of which exactly ``successes`` increment T2.

        Used by the repetition-level vectorized path of Algorithm 2's batched
        ingestion: the caller has already drawn the binomial number of T2 increments
        for every bucket in one vectorized pass, so this method simulates the rest of
        the per-occurrence process *conditioned* on that count.  Given the count, the
        T2-increment positions are uniform among the ``occurrences`` trials (binomial
        thinning); the failure runs between them are credited at their run's epoch and
        each incrementing occurrence re-evaluates its T3 coin at the updated epoch,
        exactly as :meth:`offer` orders the steps.
        """
        if occurrences < 0 or not 0 <= successes <= occurrences:
            raise ValueError("need 0 <= successes <= occurrences")
        if successes == 0:
            self._record_run(self.current_epoch(), occurrences)
            return
        positions = sorted(self._rng.sample(range(occurrences), successes))
        previous = -1
        for position in positions:
            self._record_run(self.current_epoch(), position - previous - 1)
            self.subsample_count += 1
            epoch = self.current_epoch()
            if epoch >= 0 and self._rng.bernoulli(self.increment_probability(epoch)):
                self.epoch_counts[epoch] = self.epoch_counts.get(epoch, 0) + 1
            previous = position
        self._record_run(self.current_epoch(), occurrences - 1 - previous)

    def _record_run(self, epoch: int, run_length: int) -> None:
        """Credit ``run_length`` same-epoch occurrences to ``T3`` with one binomial."""
        if run_length <= 0 or epoch < 0:
            return
        accepted = self._rng.binomial(run_length, self.increment_probability(epoch))
        if accepted:
            self.epoch_counts[epoch] = self.epoch_counts.get(epoch, 0) + accepted

    def merge(self, other: "EpochAcceleratedCounter") -> None:
        """Additively combine another counter's T2/T3 state into this one.

        ``subsample_count`` and the per-epoch ``T3`` counts simply add.  This is sound
        because the estimator (line 23) credits every accepted arrival ``1/p_t`` for
        the probability ``p_t`` it was accepted at — unbiasedness holds arrival by
        arrival, regardless of which counter instance accepted it, so the merged
        estimate is unbiased for the *total* occurrence count (additive in
        expectation).  Two caveats, documented rather than hidden:

        * **Variance**: each input ran its own epoch schedule over a smaller count, so
          its arrivals were accepted at *lower* epochs (higher probabilities) than a
          single counter over the concatenation would have used.  Merged variance is
          the sum of the inputs' variances, which is at most — typically less than —
          the single-run variance bound of Claim 2; the guarantee is preserved.
        * **Uncounted prefix**: each input independently skipped its first
          ``O(1/(eps*sqrt(epoch_scale)))`` occurrences (negative epochs), so the merged
          counter can miss up to k such prefixes for k-way merges.  With the default
          ``epoch_scale`` and practical shard counts this stays within the
          ``O(eps * sample)`` additive budget.

        After the merge the counter continues at the epoch implied by the combined
        ``subsample_count``, exactly as a single counter at that count would.
        """
        if other.epsilon != self.epsilon or other.epoch_scale != self.epoch_scale:
            raise ValueError("cannot merge accelerated counters with different parameters")
        self.subsample_count += other.subsample_count
        for epoch, count in other.epoch_counts.items():
            self.epoch_counts[epoch] = self.epoch_counts.get(epoch, 0) + count

    def estimate(self) -> float:
        """Estimate of the number of occurrences offered (Algorithm 2 line 23)."""
        total = 0.0
        for epoch, count in self.epoch_counts.items():
            total += count / self.increment_probability(epoch)
        return total

    def approximate_running_frequency(self) -> float:
        """The running approximation ``T2[i,j] / eps`` used for epoch selection (Claim 1)."""
        return self.subsample_count / self.epsilon

    def space_bits(self) -> int:
        """Bits used: the subsample counter plus one small counter per active epoch."""
        bits = max(1, bits_for_value(self.subsample_count))
        for count in self.epoch_counts.values():
            bits += max(1, bits_for_value(count))
        return bits
