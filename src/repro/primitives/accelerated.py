"""Accelerated (epoch-based probabilistic) counters — the heart of Algorithm 2.

The optimal heavy hitters algorithm needs to count the sampled frequency of each of
``O(1/eps)`` hashed ids with additive error ``O(eps * s)`` using only ``O(1)`` bits per
id in expectation.  The paper's device is the *accelerated counter*: increment a counter
with a probability that grows (accelerates) with the running estimate of the count, and
correct for the probability when reading the counter back.

Two classes are provided:

* :class:`AcceleratedCounter` — a single fixed-probability probabilistic counter
  (increment with probability ``p``; estimate is ``count / p``).  This is the
  pedagogical building block described in the overview of Section 3.1.2; its estimate is
  unbiased with variance ``f / p``.
* :class:`EpochAcceleratedCounter` — the full epoch-structured counter of Algorithm 2
  lines 14–17 and 23, i.e. the per-(bucket, repetition) slice of the paper's tables
  ``T2`` and ``T3``:

  - ``subsample_count`` (the paper's ``T2[i, j]``) counts an ``eps``-rate subsample of
    the bucket's arrivals (line 14); ``subsample_count / eps`` is a running constant-
    factor approximation of the bucket's frequency (Claim 1).
  - ``epoch_counts[t]`` (the paper's ``T3[i, j, t]``) counts arrivals assigned to epoch
    ``t = floor(log2(epoch_scale * T2[i,j]^2))`` and accepted with probability
    ``min(eps * 2^t, 1)`` (lines 15–17).  Arrivals whose epoch is negative are not
    recorded at all — exactly as in the paper, this loses only the first
    ``O(1/(eps * sqrt(epoch_scale)))`` occurrences, which is within the error budget.

  The frequency estimate is ``sum_t epoch_counts[t] / min(eps * 2^t, 1)`` (line 23).

The paper sets ``epoch_scale = 1e-6`` because its sampled stream has
``l = 1e5 * eps^-2`` items; with the practically sized samples this reproduction uses
(``~1e2 * eps^-2``), the same role is played by ``epoch_scale = 1.0`` (the default
here), which keeps the uncounted prefix at ``O(1/eps)`` arrivals — well within the
``O(eps * sample)`` additive budget.  Both settings are exercised by the tests.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class AcceleratedCounter:
    """Increment with a fixed probability ``p``; estimate the true count as ``c / p``."""

    def __init__(self, probability: float, rng: Optional[RandomSource] = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.count = 0
        self._rng = rng if rng is not None else RandomSource()

    def offer(self) -> None:
        """Register one occurrence of the item."""
        if self._rng.bernoulli(self.probability):
            self.count += 1

    def estimate(self) -> float:
        """Unbiased estimate of the number of occurrences offered."""
        return self.count / self.probability

    def space_bits(self) -> int:
        return max(1, bits_for_value(self.count))


class EpochAcceleratedCounter:
    """The epoch-structured accelerated counter of Algorithm 2 (T2/T3 for one bucket)."""

    def __init__(
        self,
        epsilon: float,
        rng: Optional[RandomSource] = None,
        epoch_scale: float = 1.0,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if epoch_scale <= 0.0:
            raise ValueError("epoch_scale must be positive")
        self.epsilon = epsilon
        self.epoch_scale = epoch_scale
        self.subsample_count = 0
        self.epoch_counts: Dict[int, int] = {}
        self._rng = rng if rng is not None else RandomSource()

    def current_epoch(self) -> int:
        """Epoch assigned to an arriving occurrence (Algorithm 2 line 15); -1 if inactive."""
        if self.subsample_count <= 0:
            return -1
        value = self.epoch_scale * float(self.subsample_count) ** 2
        if value < 1.0:
            return -1
        return int(math.floor(math.log2(value)))

    def increment_probability(self, epoch: int) -> float:
        """The acceptance probability of epoch ``t`` (Algorithm 2 line 15)."""
        if epoch < 0:
            return 0.0
        return min(self.epsilon * (2.0 ** epoch), 1.0)

    def offer(self) -> None:
        """Register one occurrence of the hashed id (Algorithm 2 lines 14-17)."""
        # Line 14: with probability eps, increment T2[i, j].
        if self._rng.bernoulli(self.epsilon):
            self.subsample_count += 1
        # Lines 15-17: epoch assignment and probabilistic increment of T3[i, j, t].
        epoch = self.current_epoch()
        if epoch < 0:
            return
        if self._rng.bernoulli(self.increment_probability(epoch)):
            self.epoch_counts[epoch] = self.epoch_counts.get(epoch, 0) + 1

    def estimate(self) -> float:
        """Estimate of the number of occurrences offered (Algorithm 2 line 23)."""
        total = 0.0
        for epoch, count in self.epoch_counts.items():
            total += count / self.increment_probability(epoch)
        return total

    def approximate_running_frequency(self) -> float:
        """The running approximation ``T2[i,j] / eps`` used for epoch selection (Claim 1)."""
        return self.subsample_count / self.epsilon

    def space_bits(self) -> int:
        """Bits used: the subsample counter plus one small counter per active epoch."""
        bits = max(1, bits_for_value(self.subsample_count))
        for count in self.epoch_counts.values():
            bits += max(1, bits_for_value(count))
        return bits
