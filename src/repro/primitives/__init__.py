"""Primitive building blocks shared by every streaming algorithm in the package.

The paper (Bhattacharyya, Dey, Woodruff, PODS 2016) builds its algorithms out of a
small set of reusable ingredients:

* a universal hash family over a prime field (paper Section 2.4, Lemma 2),
* samplers that pick stream items with a power-of-two probability using only
  ``O(log log m)`` bits of state (Lemma 1), plus classic Bernoulli / reservoir samplers,
* Morris approximate counters for tracking the stream length when ``m`` is unknown
  (Section 3.5),
* variable-length and truncated counters (Section 2.3 and Algorithm 3),
* "accelerated" counters whose increment probability grows with the current count
  (Algorithm 2),
* a :class:`~repro.primitives.space.SpaceMeter` that accounts for the number of bits
  each data structure is entitled to under the algorithm's own invariants, which is the
  quantity Table 1 of the paper bounds.

Everything here is deterministic given a :class:`~repro.primitives.rng.RandomSource`
seed, so experiments and tests are reproducible.
"""

from repro.primitives.rng import RandomSource
from repro.primitives.space import SpaceMeter, bits_for_value, bits_for_range
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction, next_prime
from repro.primitives.sampling import (
    BernoulliSampler,
    CoinFlipSampler,
    ReservoirSampler,
    FixedSizeSampler,
    round_down_to_power_of_two_probability,
)
from repro.primitives.morris import MorrisCounter
from repro.primitives.counters import VariableLengthCounter, TruncatedCounter, SaturatingCounter
from repro.primitives.accelerated import AcceleratedCounter, EpochAcceleratedCounter

__all__ = [
    "RandomSource",
    "SpaceMeter",
    "bits_for_value",
    "bits_for_range",
    "UniversalHashFamily",
    "UniversalHashFunction",
    "next_prime",
    "BernoulliSampler",
    "CoinFlipSampler",
    "ReservoirSampler",
    "FixedSizeSampler",
    "round_down_to_power_of_two_probability",
    "MorrisCounter",
    "VariableLengthCounter",
    "TruncatedCounter",
    "SaturatingCounter",
    "AcceleratedCounter",
    "EpochAcceleratedCounter",
]
