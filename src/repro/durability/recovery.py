"""Crash recovery: newest valid checkpoint + WAL replay = the acked prefix.

:func:`recover_sink` is the single entry point a restarting server (or the
offline chaos harness) uses to rebuild ingest state from a WAL directory:

1. **sweep** stale ``*.ckpt.tmp`` files a crash stranded between the
   checkpointer's temp-write and its rename;
2. **repair** the journal — truncate a torn tail (partial or checksum-failing
   final record) left by a mid-append crash;
3. **restore** the newest *valid* checkpoint found in the directory, skipping
   corrupted ones (an interrupted checkpoint must never mask a good older one);
4. **replay** journal records strictly past the checkpoint's recorded WAL
   position, re-chunked at the original ``chunk_size`` so the rebuilt pipeline
   sees the same chunk boundaries the uninterrupted run would have;
5. **reopen** the journal for appending, so the recovered server keeps the
   same durability promise from its first post-restart ack.

The sub-chunk remainder of the replay — acked items that had not yet filled a
chunk — comes back as :attr:`RecoveredSink.tail` for the server to re-enqueue
(already journaled, so it must *not* be re-appended).  Because replay feeds
:meth:`~repro.pipeline.PipelinedExecutor.ingest_chunk` exactly ``chunk_size``
items at a time from the same item sequence, the recovered state equals an
offline replay round-tripped through the checkpointer at the same boundaries,
bit for bit, under the RNG contract (see docs/DURABILITY.md).
"""

from __future__ import annotations

import glob
import logging
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.durability.wal import (
    DEFAULT_SEGMENT_BYTES,
    WalError,
    WriteAheadLog,
    list_segments,
    replay,
)
from repro.observability.metrics import MetricRegistry, resolve_registry
from repro.service.checkpoint import Checkpointer, CheckpointError

logger = logging.getLogger("repro.durability.recovery")


@dataclass
class RecoveredSink:
    """What :func:`recover_sink` hands back to the restarting server."""

    #: The rebuilt sink (``PipelinedExecutor`` or ``ReplicaGroup``), restored
    #: from the checkpoint (if any) and fed every complete replayed chunk.
    sink: object
    #: The journal, repaired and reopened for appending.
    wal: WriteAheadLog
    #: Replayed items that had not yet filled a chunk (``< chunk_size``).
    #: Already journaled — re-enqueue into the pipeline, never re-append.
    tail: np.ndarray
    #: Where the rebuilt state came from: ``"fresh"``, ``"checkpoint"``,
    #: ``"wal"``, or ``"checkpoint+wal"``.
    source: str
    #: Path of the checkpoint that was restored, if any.
    checkpoint_path: Optional[str] = None
    #: The restored checkpoint's manifest, if any.
    manifest: Optional[Dict[str, object]] = None
    #: Items replayed out of the journal (chunks + tail).
    recovered_items: int = 0
    #: Complete chunks replayed into the sink.
    recovered_chunks: int = 0
    #: Bytes truncated off a torn journal tail (0 when the tail was clean).
    torn_bytes: int = 0
    #: Stale ``*.ckpt.tmp`` files swept (satellite: the temp-file leak).
    swept_temp_files: List[str] = field(default_factory=list)

    @property
    def items_recovered_total(self) -> int:
        """Absolute item count the rebuilt server resumes at (sink + tail)."""
        return int(self.sink.items_processed) + int(self.tail.size)


def find_checkpoint(
    directory: str, checkpointer: Optional[Checkpointer] = None
) -> Optional[str]:
    """The path of the newest *valid* ``*.ckpt`` in ``directory``, or ``None``.

    "Newest" means highest ``items_processed`` (ties broken by name, so the
    choice is deterministic across runs).  Files that fail the checkpointer's
    integrity checks — truncated, flipped, wrong format — are skipped with a
    warning rather than aborting recovery: a crash *during* a checkpoint save
    cannot happen (the write is atomic), but a hand-damaged file must never
    mask an older good one.
    """
    checkpointer = checkpointer or Checkpointer()
    best_path: Optional[str] = None
    best_items = -1
    for path in sorted(glob.glob(os.path.join(directory, "*.ckpt"))):
        try:
            _, manifest = checkpointer.load(path)
        except (CheckpointError, OSError) as exc:
            logger.warning("recovery skipping unreadable checkpoint %r: %s",
                           path, exc)
            continue
        items = int(manifest.get("items_processed", 0))
        if items > best_items:
            best_items = items
            best_path = path
    return best_path


def recover_sink(
    directory: str,
    build_sink: Callable[[], object],
    chunk_size: int,
    checkpointer: Optional[Checkpointer] = None,
    fsync: str = "always",
    segment_bytes: Optional[int] = None,
    queue_depth: Optional[int] = None,
    registry: Optional[MetricRegistry] = None,
    tracer=None,
    fault_plan=None,
) -> RecoveredSink:
    """Rebuild ingest state from a WAL directory and reopen the journal.

    Args:
        directory: the WAL directory (created if missing).  Checkpoints are
            discovered *inside it* (``*.ckpt``); only those may drive journal
            compaction, because only they are guaranteed findable here.
        build_sink: zero-argument factory for a fresh sink, used when no valid
            checkpoint exists; must embed the run's full construction recipe
            (sketch, seed, chunk size, registry, tracer) so a fresh recovery
            is constructed exactly like a fresh serve.
        chunk_size: the pipeline chunk size; replay feeds the sink exactly
            this many items per ``ingest_chunk`` call so recovered chunk
            boundaries match the uninterrupted run's.
        checkpointer: shared :class:`Checkpointer` (metrics continuity);
            a private one is built when omitted.
        fsync / segment_bytes / fault_plan: forwarded to the reopened
            :class:`WriteAheadLog`.
        queue_depth / tracer: forwarded to the checkpoint restore so the
            rebuilt sink is instrumented like a fresh one.
        registry: records ``repro_wal_*`` recovery instruments.

    Raises:
        WalError: if the journal is corrupted beyond its tail, or if it was
            compacted past the only recoverable position (records the
            checkpoint does not cover are missing).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    directory = os.path.abspath(directory)
    os.makedirs(directory, exist_ok=True)
    checkpointer = checkpointer or Checkpointer(registry=registry)
    metric_registry = resolve_registry(registry)
    metric_recovered = metric_registry.counter(
        "repro_wal_recovered_chunks_total",
        "Complete chunks replayed out of the write-ahead log during recovery.",
    )

    swept = Checkpointer.sweep_stale_temp_files(directory)
    torn_bytes = WriteAheadLog.repair(directory, registry=metric_registry)

    checkpoint_path = find_checkpoint(directory, checkpointer)
    if checkpoint_path is not None:
        sink, manifest = checkpointer.restore_pipeline(
            checkpoint_path, chunk_size=chunk_size, queue_depth=queue_depth,
            registry=registry, tracer=tracer,
        )
        wal_position = manifest.get("wal_position")
        if wal_position is None:
            # Format-2 checkpoint (or one saved without a WAL): its item count
            # and its journal position are the same currency by construction.
            wal_position = int(manifest.get("items_processed", 0))
        resume = int(wal_position)
        source = "checkpoint"
    else:
        sink = build_sink()
        manifest = None
        resume = 0
        source = "fresh"

    segments = list_segments(directory)
    if segments and segments[0].start_items > resume:
        raise WalError(
            f"WAL in {directory!r} starts at item {segments[0].start_items} "
            f"but recovery must resume at item {resume}; the journal was "
            f"compacted past the newest restorable checkpoint"
        )

    pending: List[np.ndarray] = []
    pending_count = 0
    recovered_chunks = 0
    for _, items in replay(directory, resume):
        pending.append(items)
        pending_count += int(items.size)
        while pending_count >= chunk_size:
            buffer = np.concatenate(pending) if len(pending) > 1 else pending[0]
            cut = (pending_count // chunk_size) * chunk_size
            for offset in range(0, cut, chunk_size):
                sink.ingest_chunk(buffer[offset:offset + chunk_size])
                recovered_chunks += 1
                metric_recovered.inc()
            pending = [buffer[cut:]] if cut < pending_count else []
            pending_count -= cut
    if pending:
        tail = np.concatenate(pending) if len(pending) > 1 else pending[0]
        tail = np.ascontiguousarray(tail, dtype="<i8")
    else:
        tail = np.empty(0, dtype="<i8")

    recovered_items = recovered_chunks * chunk_size + int(tail.size)
    if recovered_items:
        source = "checkpoint+wal" if checkpoint_path is not None else "wal"
    if recovered_chunks:
        # Replaying through ingest_chunk claimed the sink's one permitted run;
        # re-arm it so the server's queue-driven run can cover the tail (the
        # adopted prefix stays accounted, exactly like a checkpoint restore).
        sink.resume_after_ingest()

    wal = WriteAheadLog(
        directory,
        fsync=fsync,
        segment_bytes=(segment_bytes if segment_bytes is not None
                       else DEFAULT_SEGMENT_BYTES),
        base_items=resume,
        registry=registry,
        fault_plan=fault_plan,
    )
    if wal.position < resume:
        # Possible only after an un-fsynced journal lost records a durable
        # checkpoint still covers (fsync=off + power loss): the checkpoint is
        # the truth, so future records must number from its position.
        wal.advance_to(resume)

    if source != "fresh" or torn_bytes or swept:
        logger.info(
            "recovered sink from %s: %d chunk(s) + %d tail item(s) replayed, "
            "%d torn byte(s) truncated, %d stale temp file(s) swept",
            source, recovered_chunks, int(tail.size), torn_bytes, len(swept),
        )
    return RecoveredSink(
        sink=sink,
        wal=wal,
        tail=tail,
        source=source,
        checkpoint_path=checkpoint_path,
        manifest=manifest,
        recovered_items=recovered_items,
        recovered_chunks=recovered_chunks,
        torn_bytes=torn_bytes,
        swept_temp_files=swept,
    )
