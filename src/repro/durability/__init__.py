"""Crash durability: the write-ahead chunk journal and its recovery path.

This package makes the ingest server's ack a durability promise: every acked
batch is journaled to a segmented, CRC-framed write-ahead log *before* the ack
is sent (:mod:`repro.durability.wal`), and a restarting server rebuilds the
acked prefix — newest valid checkpoint plus journal replay past its recorded
position, torn tail truncated — bit for bit against the offline replay at the
same chunk boundaries (:mod:`repro.durability.recovery`).  The guarantee is
enforced, not assumed: the kill -9 chaos sweep in
:func:`repro.analysis.harness.run_crash_comparison` and the bench's
``--mode durability`` record ``no_acked_loss`` from live SIGKILLed servers.
See docs/DURABILITY.md for the ack contract and the on-disk format.
"""

from repro.durability.recovery import RecoveredSink, find_checkpoint, recover_sink
from repro.durability.wal import (
    DEFAULT_SEGMENT_BYTES,
    WAL_FORMAT,
    WAL_MAGIC,
    WalError,
    WriteAheadLog,
    list_segments,
    replay,
    tear_tail,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "RecoveredSink",
    "WAL_FORMAT",
    "WAL_MAGIC",
    "WalError",
    "WriteAheadLog",
    "find_checkpoint",
    "list_segments",
    "recover_sink",
    "replay",
    "tear_tail",
]
