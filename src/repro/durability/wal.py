"""The write-ahead chunk journal: acked batches made durable before the ack.

A :class:`WriteAheadLog` is a directory of append-only **segment** files.  Every
batch the service acknowledges is appended as one length-prefixed, CRC-framed
record *before* the ack is sent, so "the server said ok" becomes a durability
promise instead of a liveness hint: after a ``kill -9`` (or power loss, under
``fsync='always'``), :mod:`repro.durability.recovery` replays the journal past
the newest checkpoint and rebuilds exactly the acked stream prefix, bit for bit
under the repo's RNG contract (see docs/DURABILITY.md).

On-disk format
--------------

Each segment starts with a 24-byte header::

    8 bytes   magic  b"REPROWAL"
    4 bytes   format version (little-endian uint32; currently 1)
    4 bytes   checksum algorithm id (0 = zlib.crc32, 1 = CRC32C)
    8 bytes   start_items: items recorded before this segment (uint64)

followed by records::

    4 bytes   payload length L (little-endian uint32)
    4 bytes   checksum over the payload (little-endian uint32)
    L bytes   payload: the batch as contiguous little-endian int64
              (exactly :func:`repro.service.protocol.encode_items` bytes)

The checksum is CRC32C (Castagnoli) when the optional ``crc32c`` module is
importable, else the stdlib's C-speed ``zlib.crc32`` — the header records which,
so a reader always verifies with the writer's algorithm and the repo needs no
new dependency.  Positions are **absolute item counts**: ``start_items`` plus
the payload lengths walked so far.  Items are the one currency shared with
checkpoints (``SinkState.items_processed``) and the re-chunker, so a checkpoint
boundary may fall *inside* a record and recovery replays just that record's
tail.

Torn tails
----------

A crash mid-append leaves the final record partial (short header, short
payload, or a checksum mismatch).  That is not corruption — it is the expected
shape of an interrupted write — and it is always un-acked data, because the ack
only follows a completed append.  :meth:`WriteAheadLog.repair` (run by recovery
and by the constructor before appending) truncates the torn tail and counts it
in ``repro_wal_torn_tails_total``.  A checksum failure *before* the final
record of the final segment, by contrast, is real corruption and raises
:class:`WalError` — silently skipping a middle record would desynchronize every
item position after it.

Durability policies
-------------------

``fsync='always'`` fsyncs after every append: an acked batch survives power
loss.  ``'interval:N'`` fsyncs every N appends (and on close/rotation): bounded
loss window, most of the throughput back.  ``'off'`` never fsyncs explicitly:
survives process crashes (the page cache persists) but not power loss.  The
cost of each is measured, not claimed — ``BENCH_durability.json`` records the
three policies' push throughput side by side.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.observability.metrics import MetricRegistry, resolve_registry
from repro.service.protocol import MAX_PAYLOAD_BYTES, encode_items

try:  # pragma: no cover - exercised only where the optional wheel exists
    from crc32c import crc32c as _crc32c
except ImportError:  # the container ships no crc32c wheel; zlib.crc32 stands in
    _crc32c = None

#: Segment-file magic; a file without it is not a WAL segment.
WAL_MAGIC = b"REPROWAL"

#: On-disk segment format version; bump on incompatible layout changes.
WAL_FORMAT = 1

#: Checksum algorithm ids recorded in the segment header.
CHECKSUM_CRC32 = 0
CHECKSUM_CRC32C = 1

_HEADER = struct.Struct("<8sIIQ")   # magic, format, checksum id, start_items
_RECORD = struct.Struct("<II")      # payload length, checksum

#: Default segment rotation threshold (bytes); ``serve --wal-segment-bytes``.
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024

_ITEM_BYTES = 8  # the payload dtype is <i8, exactly protocol.ITEM_DTYPE


class WalError(RuntimeError):
    """An unreadable or corrupted write-ahead log (never a mere torn tail)."""


def _checksum(algorithm: int, payload) -> int:
    if algorithm == CHECKSUM_CRC32C:
        if _crc32c is None:
            raise WalError(
                "this WAL was written with CRC32C but no crc32c module is "
                "importable here; install it or rebuild the journal"
            )
        return _crc32c(bytes(payload)) & 0xFFFFFFFF
    return zlib.crc32(payload) & 0xFFFFFFFF


def _preferred_checksum() -> int:
    return CHECKSUM_CRC32C if _crc32c is not None else CHECKSUM_CRC32


def _segment_name(sequence: int) -> str:
    return f"wal-{sequence:08d}.seg"


def _fsync_directory(directory: str) -> None:
    """Persist directory-entry changes (new segment, truncation, unlink)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _SegmentInfo:
    """One on-disk segment: path, sequence number, and validated header."""

    __slots__ = ("path", "sequence", "checksum_algorithm", "start_items")

    def __init__(self, path: str, sequence: int, checksum_algorithm: int,
                 start_items: int) -> None:
        self.path = path
        self.sequence = sequence
        self.checksum_algorithm = checksum_algorithm
        self.start_items = start_items


def _read_segment_header(path: str) -> Tuple[int, int]:
    """``(checksum_algorithm, start_items)`` from a segment file's header."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise WalError(f"{path!r} is too short to be a WAL segment")
    magic, fmt, algorithm, start_items = _HEADER.unpack(header)
    if magic != WAL_MAGIC:
        raise WalError(f"{path!r} is not a WAL segment (bad magic)")
    if fmt != WAL_FORMAT:
        raise WalError(
            f"{path!r} has WAL format {fmt}; this version reads format {WAL_FORMAT}"
        )
    if algorithm not in (CHECKSUM_CRC32, CHECKSUM_CRC32C):
        raise WalError(f"{path!r} records unknown checksum algorithm {algorithm}")
    return algorithm, start_items


def list_segments(directory: str) -> List[_SegmentInfo]:
    """The directory's WAL segments in sequence order, headers validated.

    Raises:
        WalError: on an unreadable header or a sequence gap *before* the end
            (compaction only ever deletes a prefix, so a hole in the middle
            means someone deleted a segment by hand — positions after it would
            be wrong).
    """
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.startswith("wal-") and name.endswith(".seg"):
            try:
                sequence = int(name[4:-4])
            except ValueError:
                continue
            entries.append((sequence, os.path.join(directory, name)))
    segments: List[_SegmentInfo] = []
    previous: Optional[int] = None
    for sequence, path in entries:
        if previous is not None and sequence != previous + 1:
            raise WalError(
                f"WAL segment sequence gap in {directory!r}: "
                f"{previous} is followed by {sequence}"
            )
        previous = sequence
        algorithm, start_items = _read_segment_header(path)
        segments.append(_SegmentInfo(path, sequence, algorithm, start_items))
    return segments


def _scan_segment(
    segment: _SegmentInfo, is_last: bool
) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(absolute_start_items, payload_bytes)`` per record.

    A partial or checksum-failing **final record of the final segment** ends the
    scan silently (the torn tail; :meth:`WriteAheadLog.repair` truncates it).
    The same damage anywhere else raises :class:`WalError`.
    """
    position = segment.start_items
    with open(segment.path, "rb") as handle:
        handle.seek(_HEADER.size)
        offset = _HEADER.size
        while True:
            header = handle.read(_RECORD.size)
            if not header:
                return
            if len(header) < _RECORD.size:
                if is_last:
                    return  # torn header
                raise WalError(f"{segment.path!r} ends in a partial record header")
            length, checksum = _RECORD.unpack(header)
            if length > MAX_PAYLOAD_BYTES or length % _ITEM_BYTES:
                if is_last:
                    return  # garbage length from a torn header write
                raise WalError(
                    f"{segment.path!r} record at byte {offset} has invalid "
                    f"length {length}"
                )
            payload = handle.read(length)
            if len(payload) < length:
                if is_last:
                    return  # torn payload
                raise WalError(f"{segment.path!r} ends in a partial record payload")
            if _checksum(segment.checksum_algorithm, payload) != checksum:
                tail = is_last and handle.read(1) == b""
                if tail:
                    return  # checksum-failing final record: torn, not corrupt
                raise WalError(
                    f"{segment.path!r} record at byte {offset} fails its checksum"
                )
            yield position, payload
            position += length // _ITEM_BYTES
            offset += _RECORD.size + length


def _good_prefix_bytes(segment: _SegmentInfo, is_last: bool) -> int:
    """The byte length of the segment's valid record prefix."""
    offset = _HEADER.size
    for _, payload in _scan_segment(segment, is_last):
        offset += _RECORD.size + len(payload)
    return offset


def replay(directory: str, start_items: int = 0) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(absolute_start, items)`` for every record at or past ``start_items``.

    A record straddling ``start_items`` (a checkpoint taken mid-record, at a
    chunk boundary inside a pushed batch) is yielded *sliced* to its tail, so
    the caller replays exactly the items the checkpoint does not already hold.
    Run :meth:`WriteAheadLog.repair` first; a torn tail is skipped either way,
    but only repair truncates it on disk and counts it.
    """
    segments = list_segments(directory)
    for index, segment in enumerate(segments):
        is_last = index == len(segments) - 1
        for position, payload in _scan_segment(segment, is_last):
            count = len(payload) // _ITEM_BYTES
            if position + count <= start_items:
                continue
            items = np.frombuffer(payload, dtype="<i8")
            if position < start_items:
                items = items[start_items - position:]
                position = start_items
            yield position, items


def tear_tail(directory: str, bytes_count: int) -> Tuple[str, int]:
    """Damage the journal's tail in place (the ``torn:bytes=B`` fault).

    ``bytes_count > 0`` truncates that many bytes off the final segment;
    ``bytes_count == 0`` flips the final byte instead (a checksum-failing but
    complete record).  Returns ``(segment_path, resulting_size)``.  Chaos
    tooling only: recovery must turn either shape into a clean truncation.
    """
    segments = list_segments(directory)
    if not segments:
        raise WalError(f"no WAL segments in {directory!r} to tear")
    path = segments[-1].path
    size = os.path.getsize(path)
    if bytes_count > 0:
        new_size = max(_HEADER.size, size - bytes_count)
        with open(path, "r+b") as handle:
            handle.truncate(new_size)
        return path, new_size
    if size <= _HEADER.size:
        raise WalError(f"{path!r} holds no record bytes to flip")
    with open(path, "r+b") as handle:
        handle.seek(size - 1)
        byte = handle.read(1)
        handle.seek(size - 1)
        handle.write(bytes([byte[0] ^ 0xFF]))
    return path, size


class WriteAheadLog:
    """Segmented append-only journal of acked item batches.

    Args:
        directory: the journal directory (created if missing).  Existing
            segments are adopted: the constructor repairs any torn tail and
            resumes appending at the recorded position.
        fsync: ``"always"`` / ``"interval:N"`` / ``"off"`` (see module
            docstring).  Parsed by :meth:`parse_fsync_policy`.
        segment_bytes: rotate to a new segment once the current one reaches
            this size.
        base_items: absolute item position of the journal's first record —
            only meaningful for a fresh directory (e.g. a WAL started for a
            server restored from an older checkpoint); an existing journal
            keeps its own positions.
        registry: records the ``repro_wal_*`` instruments.
        fault_plan: a :class:`~repro.replication.FaultPlan` whose
            ``crash:after_chunk=C`` spec makes append ``C`` write half its
            record and ``os._exit`` — a deterministic kill -9 mid-append.

    Thread safety: appends are serialized by the caller (the server's push
    lock / the stream registry's lock), matching the acked-batch order the
    journal must preserve.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        base_items: int = 0,
        registry: Optional[MetricRegistry] = None,
        fault_plan=None,
    ) -> None:
        if segment_bytes <= _HEADER.size:
            raise ValueError(f"segment_bytes must exceed {_HEADER.size}")
        self._fsync_every = self.parse_fsync_policy(fsync)
        self.fsync_policy = fsync
        self._segment_bytes = segment_bytes
        self._directory = os.path.abspath(directory)
        self._fault_plan = fault_plan
        self._failed = False
        self._closed = False
        self._appends_since_sync = 0
        self._appends_total = 0
        self._registry = resolve_registry(registry)
        self._metric_appends = self._registry.counter(
            "repro_wal_appends_total", "Batches journaled to the write-ahead log."
        )
        self._metric_bytes = self._registry.counter(
            "repro_wal_bytes_total", "Record bytes appended to the write-ahead log."
        )
        self._metric_fsync_seconds = self._registry.histogram(
            "repro_wal_fsync_seconds", "Time spent in fsync per WAL append."
        )
        self._metric_torn = self._registry.counter(
            "repro_wal_torn_tails_total",
            "Torn (partial or checksum-failing) WAL tails truncated on open/recovery.",
        )
        os.makedirs(self._directory, exist_ok=True)
        self.repair(self._directory, registry=self._registry)
        segments = list_segments(self._directory)
        if segments:
            tail = segments[-1]
            self._sequence = tail.sequence
            self._checksum_algorithm = tail.checksum_algorithm
            self._position = tail.start_items
            self._handle = open(tail.path, "r+b")
            self._handle.seek(0, os.SEEK_END)
            self._segment_size = self._handle.tell()
            for position, payload in _scan_segment(tail, is_last=True):
                self._position = position + len(payload) // _ITEM_BYTES
        else:
            self._sequence = -1
            self._checksum_algorithm = _preferred_checksum()
            self._position = base_items
            self._handle = None
            self._segment_size = 0
            self._open_segment()

    # -- configuration ------------------------------------------------------------------

    @staticmethod
    def parse_fsync_policy(policy: str) -> Optional[int]:
        """``"always"`` → 1, ``"interval:N"`` → N, ``"off"`` → ``None``.

        Raises:
            ValueError: on anything else (shared by the CLI flag validation).
        """
        if policy == "always":
            return 1
        if policy == "off":
            return None
        head, separator, tail = policy.partition(":")
        if head == "interval" and separator:
            try:
                every = int(tail)
            except ValueError:
                every = 0
            if every > 0:
                return every
        raise ValueError(
            f"invalid fsync policy {policy!r}; expected always, interval:N, or off"
        )

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def position(self) -> int:
        """Absolute item count the journal covers (base + appended items)."""
        return self._position

    @property
    def appends(self) -> int:
        """Records appended by *this* instance (the crash fault's counter)."""
        return self._appends_total

    def segment_paths(self) -> List[str]:
        """The current segment files, oldest first (for tests and accounting)."""
        return [segment.path for segment in list_segments(self._directory)]

    # -- repair -------------------------------------------------------------------------

    @classmethod
    def repair(cls, directory: str, registry: Optional[MetricRegistry] = None) -> int:
        """Truncate a torn tail off the final segment; returns bytes removed.

        Idempotent and safe on a clean journal (returns 0).  Damage anywhere
        but the tail raises :class:`WalError` via the underlying scan.  The
        truncation is made durable (file + directory fsync) so a crash during
        recovery cannot resurrect the torn bytes.
        """
        segments = list_segments(directory)
        if not segments:
            return 0
        tail = segments[-1]
        size = os.path.getsize(tail.path)
        good = _good_prefix_bytes(tail, is_last=True)
        removed = size - good
        if removed <= 0:
            return 0
        with open(tail.path, "r+b") as handle:
            handle.truncate(good)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_directory(directory)
        resolve_registry(registry).counter(
            "repro_wal_torn_tails_total",
            "Torn (partial or checksum-failing) WAL tails truncated on open/recovery.",
        ).inc()
        return removed

    # -- appending ----------------------------------------------------------------------

    def append(self, items) -> int:
        """Journal one acked batch; returns the new absolute item position.

        The record is written and flushed to the OS before this returns, and
        fsynced per the policy — only then may the caller ack.  Any failure
        poisons the journal (further appends refuse) because a partially
        written record would desynchronize every position after it.
        """
        if self._closed:
            raise WalError("this WriteAheadLog is closed")
        if self._failed:
            raise WalError(
                "this WriteAheadLog failed a previous append; the segment tail "
                "is suspect — restart and recover before journaling more"
            )
        count, payload = encode_items(items)
        record = _RECORD.pack(
            len(payload), _checksum(self._checksum_algorithm, payload)
        )
        self._appends_total += 1
        try:
            if self._fault_plan is not None and self._fault_plan.fire_crash(
                self._appends_total
            ):
                # The scripted kill -9: half the record reaches the OS, then
                # the process dies without flushing, acking, or cleaning up.
                torn = (bytes(record) + bytes(payload))[: (len(record) + len(payload)) // 2]
                self._handle.write(torn)
                self._handle.flush()
                os._exit(137)
            self._handle.write(record)
            self._handle.write(payload)
            self._handle.flush()
            self._appends_since_sync += 1
            if (self._fsync_every is not None
                    and self._appends_since_sync >= self._fsync_every):
                self.sync()
        except WalError:
            raise
        except Exception as exc:
            self._failed = True
            raise WalError(f"WAL append failed: {type(exc).__name__}: {exc}") from exc
        self._segment_size += len(record) + len(payload)
        self._position += count
        self._metric_appends.inc()
        self._metric_bytes.inc(len(record) + len(payload))
        if self._segment_size >= self._segment_bytes:
            self._rotate()
        return self._position

    def sync(self) -> None:
        """fsync the current segment (and time it)."""
        started = time.perf_counter()
        os.fsync(self._handle.fileno())
        self._metric_fsync_seconds.observe(time.perf_counter() - started)
        self._appends_since_sync = 0

    def _open_segment(self) -> None:
        self._sequence += 1
        path = os.path.join(self._directory, _segment_name(self._sequence))
        handle = open(path, "wb")
        try:
            handle.write(_HEADER.pack(
                WAL_MAGIC, WAL_FORMAT, self._checksum_algorithm, self._position
            ))
            handle.flush()
            if self._fsync_every is not None:
                # The header and the directory entry must be durable before any
                # record relies on them; with fsync off, neither is promised.
                os.fsync(handle.fileno())
                _fsync_directory(self._directory)
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        self._segment_size = _HEADER.size

    def _rotate(self) -> None:
        if self._fsync_every is not None:
            self.sync()
        self._handle.close()
        self._open_segment()

    def advance_to(self, position: int) -> None:
        """Jump the journal's position forward to ``position`` (never back).

        Used by recovery when a durable checkpoint covers more items than the
        journal holds (possible only under ``fsync='off'`` plus power loss):
        the checkpoint is the truth, so the journal rotates to a fresh segment
        whose header numbers future records from the checkpoint's position.
        """
        if position <= self._position:
            return
        self._position = position
        self._rotate()

    # -- compaction ---------------------------------------------------------------------

    def compact(self, position: int) -> List[str]:
        """Delete segments a checkpoint at ``position`` made obsolete.

        A segment is obsolete when its *successor's* ``start_items`` is at or
        below ``position`` — every record it holds is then covered by the
        checkpoint.  The active (final) segment is never deleted.  Returns the
        deleted paths.
        """
        segments = list_segments(self._directory)
        deleted: List[str] = []
        for index in range(len(segments) - 1):
            if segments[index + 1].start_items <= position:
                os.unlink(segments[index].path)
                deleted.append(segments[index].path)
            else:
                break
        if deleted and self._fsync_every is not None:
            _fsync_directory(self._directory)
        return deleted

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync (per policy), and close the active segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            try:
                self._handle.flush()
                if self._fsync_every is not None and not self._failed:
                    os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
