"""Experiment ACC — the Definition 1 guarantees, measured across algorithms and workloads.

The paper proves that its algorithms return (with constant probability) every ϕ-heavy
item, no (ϕ−ε)-light item, and ±εm frequency estimates.  This module measures recall,
precision and the maximum estimation error for the paper's two algorithms and the four
classical baselines on Zipfian and planted workloads, and times the full
consume+report pipeline.
"""

import pytest

from bench_common import print_experiment_table

from repro.analysis.harness import run_heavy_hitter_comparison
from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream

EPSILON = 0.02
PHI = 0.05
UNIVERSE = 5000
STREAM_LENGTH = 25000


def algorithm_factories(stream_length):
    return {
        "simple (Thm 1)": lambda: SimpleListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=stream_length, rng=RandomSource(1),
        ),
        "optimal (Thm 2)": lambda: OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=stream_length, rng=RandomSource(2),
        ),
        "misra-gries": lambda: MisraGries(epsilon=EPSILON, universe_size=UNIVERSE),
        "space-saving": lambda: SpaceSaving(epsilon=EPSILON, universe_size=UNIVERSE),
        "lossy-counting": lambda: LossyCounting(epsilon=EPSILON, universe_size=UNIVERSE),
        "count-min": lambda: CountMinSketch(
            epsilon=EPSILON, delta=0.05, universe_size=UNIVERSE, rng=RandomSource(3),
        ),
        "count-sketch": lambda: CountSketch(
            epsilon=0.05, delta=0.05, universe_size=UNIVERSE, rng=RandomSource(4),
        ),
    }


def workloads():
    return {
        "zipf-1.1": zipfian_stream(STREAM_LENGTH, UNIVERSE, skew=1.1, rng=RandomSource(10)),
        "zipf-1.5": zipfian_stream(STREAM_LENGTH, UNIVERSE, skew=1.5, rng=RandomSource(11)),
        "planted": planted_heavy_hitters_stream(
            STREAM_LENGTH, UNIVERSE, {1: 0.15, 2: 0.09, 3: 0.055, 4: 0.02},
            rng=RandomSource(12),
        ),
    }


class TestAccuracyTables:
    @pytest.mark.parametrize("workload_name", ["zipf-1.1", "zipf-1.5", "planted"])
    def test_accuracy_table(self, workload_name):
        stream = workloads()[workload_name]
        rows = run_heavy_hitter_comparison(
            algorithm_factories(len(stream)), stream, phi=PHI
        )
        print_experiment_table(
            f"ACC: accuracy and space on workload {workload_name} "
            f"(eps={EPSILON}, phi={PHI}, n={UNIVERSE}, m={STREAM_LENGTH})",
            rows,
            ["label", "recall", "precision", "max_error_fraction_of_m", "reported",
             "space_bits", "updates_per_second"],
        )
        for row in rows:
            # Every algorithm must find all the truly heavy items on these workloads;
            # the probabilistic ones are seeded so this is a deterministic regression check.
            assert row.measurements["recall"] == 1.0, row.label
            # Frequency error stays within the (generous) 2*eps envelope.
            assert row.measurements["max_error_fraction_of_m"] <= 2 * EPSILON, row.label


class TestPipelineThroughput:
    def test_simple_pipeline(self, benchmark):
        stream = workloads()["zipf-1.5"]

        def run():
            algo = SimpleListHeavyHitters(
                epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
                stream_length=len(stream), rng=RandomSource(20),
            )
            algo.consume(stream)
            return algo.report()

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_misra_gries_pipeline(self, benchmark):
        stream = workloads()["zipf-1.5"]

        def run():
            algo = MisraGries(epsilon=EPSILON, universe_size=UNIVERSE)
            algo.consume(stream)
            return algo.report(phi=PHI)

        benchmark.pedantic(run, rounds=3, iterations=1)
