"""Benchmark-suite configuration.

Two things happen here:

* the ``src`` layout is made importable so the benchmarks run against the working tree
  even when the package is not installed (mirrors the top-level ``conftest.py``);
* every benchmark module's test gets the ``benchmark`` fixture attached (via an autouse
  fixture), so the experiment-table tests — which measure space and accuracy rather than
  wall-clock time — are still collected and executed under ``--benchmark-only`` and
  their tables appear in the benchmark log.  Tests that want wall-clock numbers call
  ``benchmark`` / ``benchmark.pedantic`` explicitly.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture(autouse=True)
def _attach_benchmark_fixture(benchmark):
    """Reference the benchmark fixture so --benchmark-only does not skip table tests."""
    yield
