"""Experiment T1-MIN — Table 1, row 3: ε-Minimum.

Paper claim: space O(ε⁻¹ log log(1/(εδ)) + log log m) bits (Theorem 4), lower bound
Ω(ε⁻¹ + log log m) (Theorems 11, 14).  The interesting comparison is against running an
(ε, ε)-heavy-hitters algorithm, which would cost Ω(ε⁻¹ log ε⁻¹) — the minimum problem is
strictly cheaper because per-item counters can be truncated at a polylog cap.

Measured here:

* space sweep over ε, with the per-counter width shown to be log log (the truncation cap),
* space compared against the heavy-hitters route and exact counting,
* correctness rate of the reported minimum on skewed small-universe streams,
* timed updates.
"""

import math

import pytest

from bench_common import check_scaling_shape, print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.core.minimum import EpsilonMinimum
from repro.lowerbounds.bounds import (
    heavy_hitters_upper_bound_bits,
    minimum_lower_bound_bits,
    minimum_upper_bound_bits,
)
from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value
from repro.streams.generators import zipfian_stream
from repro.streams.truth import exact_frequencies

STREAM_LENGTH = 30000


def _algo(epsilon, universe_size, seed=1, delta=0.1):
    return EpsilonMinimum(
        epsilon=epsilon, universe_size=universe_size, stream_length=STREAM_LENGTH,
        delta=delta, rng=RandomSource(seed),
    )


class TestSpaceScaling:
    def test_space_sweep_epsilon(self):
        rows, measured, inverse_epsilons = [], [], [8, 16, 32, 64]
        for inverse_epsilon in inverse_epsilons:
            epsilon = 1.0 / inverse_epsilon
            # Keep the universe just below the large-universe shortcut threshold so the
            # full data-structure path is exercised (that is the regime Table 1 is about).
            universe = max(4, int(0.9 / ((1 - 0.1) * epsilon)))
            stream = zipfian_stream(STREAM_LENGTH, universe, skew=1.3,
                                    rng=RandomSource(inverse_epsilon))
            algo = _algo(epsilon, universe, seed=inverse_epsilon)
            algo.consume(stream)
            bits = float(algo.space_bits())
            measured.append(bits)
            rows.append(ExperimentRow(
                "T1-MIN eps sweep", {"1/eps": inverse_epsilon, "universe": universe},
                {
                    "space_bits": bits,
                    "counter_width_bits": float(bits_for_value(algo.truncation_cap)),
                    "upper_bound_bits": minimum_upper_bound_bits(epsilon, STREAM_LENGTH),
                    "lower_bound_bits": minimum_lower_bound_bits(epsilon, STREAM_LENGTH),
                    "hh_route_bits": heavy_hitters_upper_bound_bits(
                        epsilon, epsilon, universe, STREAM_LENGTH
                    ),
                },
            ))
        print_experiment_table(
            "T1-MIN: space vs 1/eps — counters are log log wide; cheaper than the HH route",
            rows,
            ["label", "1/eps", "universe", "space_bits", "counter_width_bits",
             "upper_bound_bits", "lower_bound_bits", "hh_route_bits"],
        )
        bound = [minimum_upper_bound_bits(1.0 / x, STREAM_LENGTH) for x in inverse_epsilons]
        check_scaling_shape(inverse_epsilons, measured, bound, slack=0.7)

    def test_counter_width_is_loglog_in_epsilon(self):
        """The per-counter width grows like log log(1/eps), not log(1/eps)."""
        widths = []
        for epsilon in (0.1, 0.01, 0.001):
            algo = _algo(epsilon, universe_size=8, seed=3)
            widths.append(bits_for_value(algo.truncation_cap))
        # Tripling the number of decades in 1/eps should add only a few bits.
        assert widths[-1] - widths[0] <= 3 * math.log2(math.log2(1000) / math.log2(10)) + 6
        assert widths == sorted(widths)

    def test_space_versus_exact_counting(self):
        """The win over exact per-item counters comes from truncation: counter width is
        log log(1/(eps*delta)), independent of the stream length, so for long streams
        (here a declared m of 10^9) the truncated structure is strictly smaller."""
        epsilon = 0.02
        declared_length = 10 ** 9
        universe = int(0.9 / ((1 - 0.1) * epsilon))
        stream = zipfian_stream(STREAM_LENGTH, universe, skew=1.4, rng=RandomSource(4))
        algo = EpsilonMinimum(
            epsilon=epsilon, universe_size=universe, stream_length=declared_length,
            delta=0.1, rng=RandomSource(5),
        )
        algo.consume(stream)
        exact_bits = universe * (bits_for_value(declared_length) + bits_for_value(universe - 1))
        rows = [ExperimentRow(
            "T1-MIN vs exact", {"universe": universe, "declared_m": declared_length},
            {"minimum_bits": float(algo.space_bits()), "exact_bits": float(exact_bits)},
        )]
        print_experiment_table(
            "T1-MIN: truncated counters vs exact per-item counters (m = 1e9)", rows,
            ["label", "universe", "declared_m", "minimum_bits", "exact_bits"],
        )
        assert algo.space_bits() < exact_bits


class TestAccuracy:
    def test_minimum_correctness_rate(self):
        epsilon = 0.05
        universe = 12
        stream = zipfian_stream(STREAM_LENGTH, universe, skew=1.5, rng=RandomSource(6))
        truth = exact_frequencies(stream)
        correct = 0
        trials = 10
        for seed in range(trials):
            algo = _algo(epsilon, universe, seed=100 + seed)
            algo.consume(stream)
            if algo.report().is_correct(truth, universe_size=universe):
                correct += 1
        rows = [ExperimentRow(
            "T1-MIN accuracy", {"eps": epsilon, "universe": universe},
            {"success_rate": correct / trials},
        )]
        print_experiment_table(
            "T1-MIN: success rate over 10 seeded runs (target >= 1 - delta = 0.9)",
            rows, ["label", "eps", "universe", "success_rate"],
        )
        assert correct >= 7


class TestUpdateThroughput:
    def test_minimum_updates(self, benchmark):
        epsilon = 0.05
        universe = 12
        stream = list(zipfian_stream(5000, universe, skew=1.3, rng=RandomSource(7)))
        algo = _algo(epsilon, universe, seed=8)

        def run():
            for item in stream:
                algo.insert(item)

        benchmark.pedantic(run, rounds=3, iterations=1)
