"""Experiment T1-HH — Table 1, row 1: (ε,ϕ)-Heavy Hitters.

Paper claim: space O(ε⁻¹ log ϕ⁻¹ + ϕ⁻¹ log n + log log m) bits (Theorems 1, 2, 7),
versus the prior-art Misra–Gries bound O(ε⁻¹ (log n + log m)); matching lower bound
(Theorems 9, 14).

What this module measures:

* ``test_space_sweep_epsilon`` — measured space of Algorithm 1, Algorithm 2 and
  Misra–Gries while sweeping ε (shape: linear in 1/ε for all three).
* ``test_space_sweep_universe`` — sweeping log n (shape: our algorithms grow like
  ϕ⁻¹ log n, Misra–Gries like ε⁻¹ log n, so the gap widens — the paper's headline).
* ``test_space_sweep_phi`` — sweeping ϕ (ϕ⁻¹ log n term).
* ``test_bound_formula_comparison`` — the Table 1 formulas themselves, evaluated on the
  same grid (who wins, by what factor, where the crossover lies).
* timed update benchmarks for Algorithm 1, Algorithm 2 and Misra–Gries.
"""

import pytest

from bench_common import check_scaling_shape, print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.baselines.misra_gries import MisraGries
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.lowerbounds.bounds import (
    heavy_hitters_lower_bound_bits,
    heavy_hitters_upper_bound_bits,
    misra_gries_bound_bits,
)
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies

STREAM_LENGTH = 20000
PHI = 0.05
HEAVY_ITEMS = {1: 0.15, 2: 0.09, 3: 0.06}


def _stream(universe_size, seed=0):
    return planted_heavy_hitters_stream(
        STREAM_LENGTH, universe_size, HEAVY_ITEMS, rng=RandomSource(seed)
    )


def _simple(epsilon, phi, universe_size, seed=1):
    return SimpleListHeavyHitters(
        epsilon=epsilon, phi=phi, universe_size=universe_size,
        stream_length=STREAM_LENGTH, rng=RandomSource(seed),
    )


def _optimal(epsilon, phi, universe_size, seed=2):
    return OptimalListHeavyHitters(
        epsilon=epsilon, phi=phi, universe_size=universe_size,
        stream_length=STREAM_LENGTH, rng=RandomSource(seed),
    )


def _measure(algorithm, stream):
    algorithm.consume(stream)
    return float(algorithm.space_bits())


class TestSpaceScaling:
    def test_space_sweep_epsilon(self):
        universe = 2 ** 16
        stream = _stream(universe)
        truth = exact_frequencies(stream)
        inverse_epsilons = [25, 50, 100, 200]
        rows, simple_bits, mg_bits = [], [], []
        for inverse_epsilon in inverse_epsilons:
            epsilon = 1.0 / inverse_epsilon
            simple = _simple(epsilon, PHI, universe)
            optimal = _optimal(epsilon, PHI, universe)
            misra = MisraGries(epsilon=epsilon, universe_size=universe,
                               stream_length_hint=STREAM_LENGTH)
            measurements = {
                "simple_bits": _measure(simple, stream),
                "optimal_bits": _measure(optimal, stream),
                "misra_gries_bits": _measure(misra, stream),
                "bound_bits": heavy_hitters_upper_bound_bits(epsilon, PHI, universe, STREAM_LENGTH),
                "mg_bound_bits": misra_gries_bound_bits(epsilon, universe, STREAM_LENGTH),
            }
            assert simple.report().contains_all_heavy(truth)
            rows.append(ExperimentRow("T1-HH eps sweep", {"1/eps": inverse_epsilon}, measurements))
            simple_bits.append(measurements["simple_bits"])
            mg_bits.append(measurements["misra_gries_bits"])
        print_experiment_table(
            "T1-HH: space vs 1/eps (n=2^16, phi=0.05, m=20k)",
            rows,
            ["label", "1/eps", "simple_bits", "optimal_bits", "misra_gries_bits",
             "bound_bits", "mg_bound_bits"],
        )
        bound = [heavy_hitters_upper_bound_bits(1.0 / x, PHI, universe, STREAM_LENGTH)
                 for x in inverse_epsilons]
        check_scaling_shape(inverse_epsilons, simple_bits, bound, slack=0.7)
        check_scaling_shape(inverse_epsilons, mg_bits,
                            [misra_gries_bound_bits(1.0 / x, universe, STREAM_LENGTH)
                             for x in inverse_epsilons], slack=0.7)

    def test_space_sweep_universe(self):
        epsilon = 0.01
        log_universes = [12, 20, 28, 36]
        rows, gaps = [], []
        for log_n in log_universes:
            universe = 2 ** log_n
            stream = _stream(2 ** 12)  # items fit in the smallest universe; ids are what matter
            simple = _simple(epsilon, PHI, universe)
            misra = MisraGries(epsilon=epsilon, universe_size=universe,
                               stream_length_hint=STREAM_LENGTH)
            simple_bits = _measure(simple, stream)
            mg_bits = _measure(misra, stream)
            gaps.append(mg_bits - simple_bits)
            rows.append(ExperimentRow(
                "T1-HH n sweep", {"log2_n": log_n},
                {
                    "simple_bits": simple_bits,
                    "misra_gries_bits": mg_bits,
                    "gap_bits": mg_bits - simple_bits,
                    "bound_bits": heavy_hitters_upper_bound_bits(epsilon, PHI, universe, STREAM_LENGTH),
                    "mg_bound_bits": misra_gries_bound_bits(epsilon, universe, STREAM_LENGTH),
                },
            ))
        print_experiment_table(
            "T1-HH: space vs log n (eps=0.01, phi=0.05) — the gap widens with log n",
            rows,
            ["label", "log2_n", "simple_bits", "misra_gries_bits", "gap_bits",
             "bound_bits", "mg_bound_bits"],
        )
        # The paper's headline: the advantage over Misra-Gries grows with log n.
        assert gaps == sorted(gaps)
        assert gaps[-1] > gaps[0]

    def test_space_sweep_phi(self):
        epsilon = 0.02
        universe = 2 ** 20
        stream = _stream(2 ** 12)
        inverse_phis = [4, 8, 16]
        rows, t2_bits = [], []
        for inverse_phi in inverse_phis:
            phi = 1.0 / inverse_phi
            simple = _simple(epsilon, phi, universe)
            simple.consume(stream)
            breakdown = simple.space_breakdown()
            rows.append(ExperimentRow(
                "T1-HH phi sweep", {"1/phi": inverse_phi},
                {
                    "total_bits": float(simple.space_bits()),
                    "id_table_bits": float(breakdown["T2"]),
                    "bound_bits": heavy_hitters_upper_bound_bits(epsilon, phi, universe, STREAM_LENGTH),
                },
            ))
            t2_bits.append(float(breakdown["T2"]))
        print_experiment_table(
            "T1-HH: space vs 1/phi (eps=0.02, n=2^20) — the phi^-1 log n term",
            rows,
            ["label", "1/phi", "total_bits", "id_table_bits", "bound_bits"],
        )
        # The id table grows linearly with 1/phi.
        check_scaling_shape(inverse_phis, t2_bits,
                            [x * 20.0 for x in inverse_phis], slack=0.5)

    def test_bound_formula_comparison(self):
        """Reproduce Table 1 row 1 at the formula level: upper == lower, and the
        crossover against Misra-Gries."""
        rows = []
        for log_n in (10, 16, 24, 40, 64):
            n = 2 ** log_n
            upper = heavy_hitters_upper_bound_bits(0.01, PHI, n, 10 ** 6)
            lower = heavy_hitters_lower_bound_bits(0.01, PHI, n, 10 ** 6)
            mg = misra_gries_bound_bits(0.01, n, 10 ** 6)
            rows.append(ExperimentRow(
                "Table1 row 1", {"log2_n": log_n},
                {"upper_bits": upper, "lower_bits": lower, "misra_gries_bits": mg,
                 "mg_over_ours": mg / upper},
            ))
            assert upper == pytest.approx(lower)
        print_experiment_table(
            "Table 1 row 1 (formulas): ours vs Misra-Gries, eps=0.01, phi=0.05, m=1e6",
            rows,
            ["label", "log2_n", "upper_bits", "lower_bits", "misra_gries_bits", "mg_over_ours"],
        )
        assert rows[-1].measurements["mg_over_ours"] > rows[0].measurements["mg_over_ours"]


class TestUpdateThroughput:
    @pytest.fixture(scope="class")
    def zipf(self):
        return zipfian_stream(20000, 2 ** 16, skew=1.2, rng=RandomSource(9))

    def test_simple_algorithm_updates(self, benchmark, zipf):
        algo = _simple(0.01, PHI, 2 ** 16, seed=10)
        items = list(zipf)

        def run():
            for item in items:
                algo.insert(item)

        benchmark(run)

    def test_optimal_algorithm_updates(self, benchmark, zipf):
        algo = _optimal(0.01, PHI, 2 ** 16, seed=11)
        items = list(zipf)

        def run():
            for item in items:
                algo.insert(item)

        benchmark(run)

    def test_misra_gries_updates(self, benchmark, zipf):
        algo = MisraGries(epsilon=0.01, universe_size=2 ** 16)
        items = list(zipf)

        def run():
            for item in items:
                algo.insert(item)

        benchmark(run)
