"""Experiment T1-MAXIMIN — Table 1, row 5: ε-Maximin / (ε,ϕ)-List Maximin.

Paper claim: space O(n ε⁻² log² n + log log m) bits (Theorem 6), lower bound
Ω(n (ε⁻² + log n) + log log m) (Theorem 13).  The headline comparison inside the paper:
maximin heavy hitters are fundamentally more expensive than Borda heavy hitters —
quadratic in 1/ε instead of logarithmic.

Measured here:

* space sweep over the number of candidates (shape ~ n log n per stored vote, ε⁻² votes),
* space sweep over ε (shape ~ ε⁻², versus Borda's log ε⁻¹ on the same grid — the
  "who wins" comparison),
* maximin score estimation error vs the ±εm guarantee,
* timed updates.
"""

import pytest

from bench_common import check_scaling_shape, print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.core.borda import ListBorda
from repro.core.maximin import ListMaximin
from repro.lowerbounds.bounds import (
    borda_upper_bound_bits,
    maximin_lower_bound_bits,
    maximin_upper_bound_bits,
)
from repro.primitives.rng import RandomSource
from repro.voting.generators import mallows_votes
from repro.voting.scores import maximin_scores

NUM_VOTES = 3000


def _votes(num_candidates, seed=0, dispersion=0.5):
    return mallows_votes(NUM_VOTES, num_candidates, dispersion=dispersion,
                         rng=RandomSource(seed))


def _algo(epsilon, num_candidates, seed=1):
    return ListMaximin(
        epsilon=epsilon, num_candidates=num_candidates, stream_length=NUM_VOTES,
        rng=RandomSource(seed),
    )


class TestSpaceScaling:
    def test_space_sweep_candidates(self):
        epsilon = 0.1
        candidate_counts = [4, 8, 16]
        rows, measured = [], []
        for n in candidate_counts:
            votes = _votes(n, seed=n)
            algo = _algo(epsilon, n, seed=n + 1)
            algo.consume(votes)
            bits = float(algo.space_bits())
            measured.append(bits)
            rows.append(ExperimentRow(
                "T1-MAXIMIN n sweep", {"candidates": n},
                {"space_bits": bits,
                 "upper_bound_bits": maximin_upper_bound_bits(epsilon, n, NUM_VOTES),
                 "lower_bound_bits": maximin_lower_bound_bits(epsilon, n, NUM_VOTES)},
            ))
        print_experiment_table(
            "T1-MAXIMIN: space vs number of candidates (eps=0.1, m=3k votes)", rows,
            ["label", "candidates", "space_bits", "upper_bound_bits", "lower_bound_bits"],
        )
        bound = [maximin_upper_bound_bits(epsilon, n, NUM_VOTES) for n in candidate_counts]
        check_scaling_shape(candidate_counts, measured, bound, slack=0.6)

    def test_maximin_costs_quadratically_more_than_borda_in_epsilon(self):
        """The paper's Borda-vs-Maximin separation, measured on the same workload."""
        n = 8
        votes = _votes(n, seed=20)
        rows = []
        ratios = []
        for inverse_epsilon in (5, 10, 20):
            epsilon = 1.0 / inverse_epsilon
            maximin = _algo(epsilon, n, seed=21)
            borda = ListBorda(epsilon=epsilon, num_candidates=n, stream_length=NUM_VOTES,
                              rng=RandomSource(22))
            for vote in votes:
                maximin.insert(vote)
                borda.insert(vote)
            ratio = maximin.space_bits() / max(1, borda.space_bits())
            ratios.append(ratio)
            rows.append(ExperimentRow(
                "Borda vs Maximin", {"1/eps": inverse_epsilon},
                {
                    "maximin_bits": float(maximin.space_bits()),
                    "borda_bits": float(borda.space_bits()),
                    "maximin_over_borda": ratio,
                    "bound_ratio": maximin_upper_bound_bits(epsilon, n, NUM_VOTES)
                    / borda_upper_bound_bits(epsilon, n, NUM_VOTES),
                },
            ))
        print_experiment_table(
            "T1-MAXIMIN: measured maximin/Borda space ratio (the eps^-2 vs log(1/eps) separation)",
            rows,
            ["label", "1/eps", "maximin_bits", "borda_bits", "maximin_over_borda", "bound_ratio"],
        )
        # Maximin is dramatically more expensive than Borda at every eps (the paper's
        # separation), and the *bound* ratio — which the measured ratio tracks until the
        # sample saturates at the full (small) benchmark stream — grows as eps shrinks.
        for index, ratio in enumerate(ratios):
            assert ratio > 20.0, rows[index]
        bound_ratios = [row.measurements["bound_ratio"] for row in rows]
        assert bound_ratios == sorted(bound_ratios)
        assert bound_ratios[-1] > bound_ratios[0]


class TestAccuracy:
    def test_maximin_score_error_within_eps_m(self):
        epsilon = 0.08
        rows = []
        for n, dispersion in ((5, 0.3), (8, 0.5), (12, 0.7)):
            votes = _votes(n, seed=n * 3, dispersion=dispersion)
            truth = maximin_scores(votes)
            algo = _algo(epsilon, n, seed=n * 3 + 1)
            algo.consume(votes)
            report = algo.report()
            max_error = max(abs(report.scores[c] - truth[c]) for c in range(n)) / NUM_VOTES
            rows.append(ExperimentRow(
                "T1-MAXIMIN accuracy", {"candidates": n, "dispersion": dispersion},
                {"max_error_over_m": max_error},
            ))
            assert max_error <= epsilon
        print_experiment_table(
            "T1-MAXIMIN: maximin score error / m on Mallows streams (guarantee: <= eps = 0.08)",
            rows, ["label", "candidates", "dispersion", "max_error_over_m"],
        )


class TestUpdateThroughput:
    def test_maximin_updates(self, benchmark):
        n = 8
        votes = _votes(n, seed=9)[:1500]
        algo = _algo(0.1, n, seed=10)

        def run():
            for vote in votes:
                algo.insert(vote)

        benchmark.pedantic(run, rounds=3, iterations=1)
