"""Experiment UNKNOWN-M — Theorems 7 and 8: streams of unknown length.

The doubling/restart wrapper must (a) keep at most two live instances, so its space stays
within a constant factor of the known-length algorithm, (b) still find the heavy items /
the maximum, and (c) track the stream position with a Morris counter whose own footprint
is O(log log m).  This module measures all three as the stream grows by two orders of
magnitude, and times the wrapper's update path against the known-length algorithm to
quantify the overhead of running two instances.
"""

import pytest

from bench_common import print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.unknown_length import UnknownLengthHeavyHitters, UnknownLengthMaximum
from repro.primitives.morris import MorrisCounter
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream
from repro.streams.truth import exact_frequencies

UNIVERSE = 500
HEAVY = {7: 0.35, 8: 0.2}


def _stream(length, seed=0):
    return planted_heavy_hitters_stream(length, UNIVERSE, HEAVY, rng=RandomSource(seed))


class TestUnknownLengthBehaviour:
    def test_space_and_recall_as_stream_grows(self):
        rows = []
        for length in (2000, 8000, 32000, 128000):
            stream = _stream(length, seed=length)
            truth = exact_frequencies(stream)
            wrapper = UnknownLengthHeavyHitters(
                epsilon=0.1, phi=0.3, universe_size=UNIVERSE,
                rng=RandomSource(1), use_morris_counter=False,
            )
            wrapper.consume(stream)
            report = wrapper.report()
            known = SimpleListHeavyHitters(
                epsilon=0.1, phi=0.3, universe_size=UNIVERSE, stream_length=length,
                rng=RandomSource(2),
            )
            known.consume(stream)
            rows.append(ExperimentRow(
                "UNKNOWN-M growth", {"m": length},
                {
                    "recall_item7": float(7 in report),
                    "restarts": float(wrapper.restarts),
                    "wrapper_space_bits": float(wrapper.space_bits()),
                    "known_length_space_bits": float(known.space_bits()),
                    "overhead_factor": wrapper.space_bits() / max(1, known.space_bits()),
                },
            ))
        print_experiment_table(
            "UNKNOWN-M: unknown-length wrapper vs known-length Algorithm 1 as m grows",
            rows,
            ["label", "m", "recall_item7", "restarts", "wrapper_space_bits",
             "known_length_space_bits", "overhead_factor"],
        )
        for row in rows:
            assert row.measurements["recall_item7"] == 1.0
            # Two live instances plus the Morris counter: small constant-factor overhead.
            assert row.measurements["overhead_factor"] <= 4.0

    def test_maximum_variant(self):
        stream = _stream(50000, seed=3)
        truth = exact_frequencies(stream)
        wrapper = UnknownLengthMaximum(
            epsilon=0.1, universe_size=UNIVERSE, rng=RandomSource(4),
            use_morris_counter=False,
        )
        wrapper.consume(stream)
        result = wrapper.report()
        rows = [ExperimentRow(
            "UNKNOWN-M maximum", {"m": len(stream)},
            {"reported_item": float(result.item),
             "item_is_true_max": float(result.item == 7),
             "space_bits": float(wrapper.space_bits())},
        )]
        print_experiment_table(
            "UNKNOWN-M: eps-Maximum with unknown stream length", rows,
            ["label", "m", "reported_item", "item_is_true_max", "space_bits"],
        )
        assert result.item == 7

    def test_morris_counter_footprint(self):
        """The log log m term: tracking the position of a 10^5-item stream in < 10 bits
        per repetition."""
        counter = MorrisCounter(rng=RandomSource(5), repetitions=5)
        rows = []
        for checkpoint in (10**3, 10**4, 10**5):
            while counter.true_count < checkpoint:
                counter.increment()
            rows.append(ExperimentRow(
                "Morris", {"true_count": checkpoint},
                {"estimate": counter.estimate(), "space_bits": float(counter.space_bits())},
            ))
        print_experiment_table(
            "UNKNOWN-M: Morris counter estimate and footprint", rows,
            ["label", "true_count", "estimate", "space_bits"],
        )
        assert rows[-1].measurements["space_bits"] <= 5 * 8
        assert 10**5 / 8 <= rows[-1].measurements["estimate"] <= 10**5 * 8


class TestTimedKernels:
    def test_wrapper_update_kernel(self, benchmark):
        stream = list(_stream(20000, seed=6))
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.1, phi=0.3, universe_size=UNIVERSE, rng=RandomSource(7),
        )

        def run():
            for item in stream:
                wrapper.insert(item)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_known_length_update_kernel(self, benchmark):
        stream = list(_stream(20000, seed=8))
        algo = SimpleListHeavyHitters(
            epsilon=0.1, phi=0.3, universe_size=UNIVERSE, stream_length=len(stream),
            rng=RandomSource(9),
        )

        def run():
            for item in stream:
                algo.insert(item)

        benchmark.pedantic(run, rounds=3, iterations=1)
