"""Experiment T1-MAX — Table 1, row 2: ε-Maximum / ℓ∞ approximation.

Paper claim: space O(ε⁻¹ log ε⁻¹ + log n + log log m) bits (Theorem 3), matching lower
bound (Theorems 10, 14).  The previous best was O(ε⁻¹ log n); the improvement is that
only a *single* id (log n bits) is stored instead of ε⁻¹ of them.

Measured here:

* space sweep over ε (shape ~ ε⁻¹ log ε⁻¹),
* space sweep over log n (shape: additive log n, i.e. the measured curve grows by a
  constant number of bits per doubling of n, unlike the ε⁻¹ log n prior art),
* accuracy of the ℓ∞ estimate across Zipf skews (IITK Open Question 3),
* timed updates.
"""

import pytest

from bench_common import check_scaling_shape, print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.core.maximum import EpsilonMaximum
from repro.lowerbounds.bounds import maximum_upper_bound_bits
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_maximum_stream, zipfian_stream
from repro.streams.truth import exact_frequencies

STREAM_LENGTH = 20000


def _stream(universe_size, seed=0):
    return planted_maximum_stream(
        STREAM_LENGTH, universe_size, maximum_item=3, maximum_fraction=0.25,
        runner_up_fraction=0.12, rng=RandomSource(seed),
    )


def _algo(epsilon, universe_size, seed=1):
    return EpsilonMaximum(
        epsilon=epsilon, universe_size=universe_size, stream_length=STREAM_LENGTH,
        rng=RandomSource(seed),
    )


class TestSpaceScaling:
    def test_space_sweep_epsilon(self):
        universe = 2 ** 16
        stream = _stream(universe)
        inverse_epsilons = [20, 40, 80, 160]
        rows, measured = [], []
        for inverse_epsilon in inverse_epsilons:
            epsilon = 1.0 / inverse_epsilon
            algo = _algo(epsilon, universe)
            algo.consume(stream)
            bits = float(algo.space_bits())
            measured.append(bits)
            rows.append(ExperimentRow(
                "T1-MAX eps sweep", {"1/eps": inverse_epsilon},
                {"space_bits": bits,
                 "bound_bits": maximum_upper_bound_bits(epsilon, universe, STREAM_LENGTH)},
            ))
        print_experiment_table(
            "T1-MAX: space vs 1/eps (n=2^16, m=20k)", rows,
            ["label", "1/eps", "space_bits", "bound_bits"],
        )
        bound = [maximum_upper_bound_bits(1.0 / x, universe, STREAM_LENGTH)
                 for x in inverse_epsilons]
        check_scaling_shape(inverse_epsilons, measured, bound, slack=0.7)

    def test_space_sweep_universe_is_additive_log_n(self):
        epsilon = 0.02
        stream = _stream(2 ** 12)
        rows, measured = [], []
        log_universes = [12, 24, 36, 48]
        for log_n in log_universes:
            algo = _algo(epsilon, 2 ** log_n)
            algo.consume(stream)
            measured.append(float(algo.space_bits()))
            rows.append(ExperimentRow(
                "T1-MAX n sweep", {"log2_n": log_n},
                {"space_bits": measured[-1],
                 "id_bits": float(algo.space_breakdown()["best_id"]),
                 "bound_bits": maximum_upper_bound_bits(epsilon, 2 ** log_n, STREAM_LENGTH)},
            ))
        print_experiment_table(
            "T1-MAX: space vs log n (eps=0.02) — only the single stored id grows",
            rows, ["label", "log2_n", "space_bits", "id_bits", "bound_bits"],
        )
        # Quadrupling log n adds only ~36 extra bits (one id), not a multiplicative factor.
        assert measured[-1] - measured[0] <= 64
        assert measured == sorted(measured)

    def test_linf_estimate_accuracy(self):
        """IITK Open Question 3: additive eps*m estimate of the maximum frequency."""
        rows = []
        for skew in (1.1, 1.5, 2.0):
            stream = zipfian_stream(STREAM_LENGTH, 2000, skew=skew, rng=RandomSource(int(skew * 10)))
            truth = exact_frequencies(stream)
            true_max = max(truth.values())
            algo = _algo(0.05, 2000, seed=int(skew * 100))
            algo.consume(stream)
            result = algo.report()
            error = abs(result.estimated_frequency - true_max) / len(stream)
            rows.append(ExperimentRow(
                "T1-MAX accuracy", {"zipf_skew": skew},
                {"true_max_fraction": true_max / len(stream),
                 "estimated_fraction": result.estimated_frequency / len(stream),
                 "error_fraction": error},
            ))
            assert error <= 0.05
        print_experiment_table(
            "T1-MAX: l_inf estimation error across Zipf skews (eps=0.05)",
            rows, ["label", "zipf_skew", "true_max_fraction", "estimated_fraction", "error_fraction"],
        )


class TestUpdateThroughput:
    def test_maximum_updates(self, benchmark):
        stream = list(zipfian_stream(5000, 2 ** 16, skew=1.2, rng=RandomSource(9)))
        algo = _algo(0.02, 2 ** 16, seed=10)

        def run():
            for item in stream:
                algo.insert(item)

        benchmark.pedantic(run, rounds=3, iterations=1)
