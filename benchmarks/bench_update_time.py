"""Experiment TIME — the O(1) update-time claim.

The paper claims O(1) worst-case update time for the heavy-hitters algorithms (under the
standard assumption that the stream is long enough to spread sampled-item work).  In a
reproduction we can measure the *amortized* per-item cost and check two things:

* the per-item cost of Algorithm 1 is comparable to (within a small factor of) the
  classical Misra–Gries update, and
* it does not blow up as ε shrinks — because most items are simply not sampled, the cost
  of processing one stream item is dominated by the sampling coin flip.
"""

import time

import pytest

from bench_common import print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximum import EpsilonMaximum
from repro.primitives.rng import RandomSource
from repro.streams.generators import zipfian_stream

UNIVERSE = 2 ** 16
STREAM_LENGTH = 200_000  # long stream: the sampling rate, hence the per-item work, is low


def _long_stream(length=30000):
    return list(zipfian_stream(length, UNIVERSE, skew=1.2, rng=RandomSource(1)))


class TestPerItemCost:
    def test_per_item_cost_does_not_grow_with_inverse_epsilon(self):
        """For a fixed-length pass, shrinking eps by 8x must not inflate per-item time
        by more than a small factor (most arrivals are never sampled)."""
        stream = _long_stream()
        rows, seconds = [], []
        for epsilon in (0.04, 0.01, 0.005):
            algo = SimpleListHeavyHitters(
                epsilon=epsilon, phi=0.05, universe_size=UNIVERSE,
                stream_length=STREAM_LENGTH, rng=RandomSource(2),
            )
            start = time.perf_counter()
            for item in stream:
                algo.insert(item)
            elapsed = time.perf_counter() - start
            seconds.append(elapsed)
            rows.append(ExperimentRow(
                "TIME eps sweep", {"eps": epsilon},
                {"seconds_per_item_us": 1e6 * elapsed / len(stream)},
            ))
        print_experiment_table(
            "TIME: per-item update cost of Algorithm 1 vs eps (m_hint=200k)",
            rows, ["label", "eps", "seconds_per_item_us"],
        )
        assert seconds[-1] <= 6 * seconds[0] + 0.05

    def test_update_cost_comparison_table(self):
        stream = _long_stream()
        contenders = {
            "simple (Thm 1)": SimpleListHeavyHitters(
                epsilon=0.01, phi=0.05, universe_size=UNIVERSE,
                stream_length=STREAM_LENGTH, rng=RandomSource(3),
            ),
            "optimal (Thm 2)": OptimalListHeavyHitters(
                epsilon=0.01, phi=0.05, universe_size=UNIVERSE,
                stream_length=STREAM_LENGTH, rng=RandomSource(4),
            ),
            "eps-maximum (Thm 3)": EpsilonMaximum(
                epsilon=0.01, universe_size=UNIVERSE,
                stream_length=STREAM_LENGTH, rng=RandomSource(5),
            ),
            "misra-gries": MisraGries(epsilon=0.01, universe_size=UNIVERSE),
            "space-saving": SpaceSaving(epsilon=0.01, universe_size=UNIVERSE),
        }
        rows = []
        for label, algo in contenders.items():
            start = time.perf_counter()
            for item in stream:
                algo.insert(item)
            elapsed = time.perf_counter() - start
            rows.append(ExperimentRow(
                "TIME comparison", {"algorithm": label},
                {"seconds_per_item_us": 1e6 * elapsed / len(stream),
                 "items_per_second": len(stream) / elapsed},
            ))
        print_experiment_table(
            "TIME: amortized per-item cost, all algorithms, eps=0.01 (m_hint=200k)",
            rows, ["label", "algorithm", "seconds_per_item_us", "items_per_second"],
        )
        # Sanity: every algorithm sustains a reasonable throughput in pure Python.
        for row in rows:
            assert row.measurements["items_per_second"] > 10_000


class TestTimedKernels:
    def test_simple_insert_kernel(self, benchmark):
        stream = _long_stream(20000)
        algo = SimpleListHeavyHitters(
            epsilon=0.01, phi=0.05, universe_size=UNIVERSE,
            stream_length=STREAM_LENGTH, rng=RandomSource(6),
        )

        def run():
            for item in stream:
                algo.insert(item)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_optimal_insert_kernel(self, benchmark):
        stream = _long_stream(20000)
        algo = OptimalListHeavyHitters(
            epsilon=0.01, phi=0.05, universe_size=UNIVERSE,
            stream_length=STREAM_LENGTH, rng=RandomSource(7),
        )

        def run():
            for item in stream:
                algo.insert(item)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_misra_gries_insert_kernel(self, benchmark):
        stream = _long_stream(20000)
        algo = MisraGries(epsilon=0.01, universe_size=UNIVERSE)

        def run():
            for item in stream:
                algo.insert(item)

        benchmark.pedantic(run, rounds=3, iterations=1)
