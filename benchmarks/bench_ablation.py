"""Experiment ABL — ablations of the design choices inside the paper's algorithms.

The paper's analysis fixes several internal parameters for convenience (number of
repetitions, number of hash buckets, the accelerated-counter epoch scale, the sampling
constant); DESIGN.md calls these out as the knobs a practical deployment would tune.
This module measures how each knob trades space against accuracy, holding the workload
fixed:

* Algorithm 2: repetitions (the median width), buckets per repetition (collision error),
  and the epoch scale (when probabilistic counting kicks in);
* Algorithm 1: the sample-size constant (how much slack Lemma 3 is given).

Each ablation prints a table and asserts the qualitative direction the analysis
predicts (more repetitions / more buckets / more samples never hurt accuracy; smaller
epoch scales reduce counter space).
"""

import pytest

from bench_common import print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.analysis.metrics import evaluate_heavy_hitters
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream
from repro.streams.truth import exact_frequencies

EPSILON = 0.02
PHI = 0.05
UNIVERSE = 3000
STREAM_LENGTH = 25000
HEAVY = {1: 0.15, 2: 0.09, 3: 0.055, 4: 0.03}


@pytest.fixture(scope="module")
def workload():
    stream = planted_heavy_hitters_stream(
        STREAM_LENGTH, UNIVERSE, HEAVY, rng=RandomSource(77)
    )
    return stream, exact_frequencies(stream)


def _run_optimal(stream, truth, seeds=range(3), **kwargs):
    """Average error / worst recall over a few seeds for one parameter setting."""
    max_errors, recalls, space = [], [], []
    for seed in seeds:
        algo = OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=STREAM_LENGTH, rng=RandomSource(100 + seed), **kwargs,
        )
        algo.consume(stream)
        report = algo.report()
        accuracy = evaluate_heavy_hitters(report, truth)
        max_errors.append(accuracy.max_frequency_error / STREAM_LENGTH)
        recalls.append(accuracy.recall)
        space.append(algo.space_bits())
    return {
        "mean_max_error_over_m": sum(max_errors) / len(max_errors),
        "min_recall": min(recalls),
        "mean_space_bits": sum(space) / len(space),
    }


class TestAlgorithm2Ablations:
    def test_repetitions_ablation(self, workload):
        stream, truth = workload
        rows = []
        errors = {}
        for repetitions in (1, 5, 17, 33):
            stats = _run_optimal(stream, truth, repetitions=repetitions)
            errors[repetitions] = stats["mean_max_error_over_m"]
            rows.append(ExperimentRow(
                "ABL repetitions", {"repetitions": repetitions}, stats,
            ))
        print_experiment_table(
            "ABL: Algorithm 2 — number of repetitions (median width) vs error and space",
            rows, ["label", "repetitions", "mean_max_error_over_m", "min_recall", "mean_space_bits"],
        )
        # The high-repetition settings must not be less accurate than the single run,
        # and must find every heavy item.
        assert errors[33] <= errors[1] + 0.005
        assert rows[-1].measurements["min_recall"] == 1.0
        # Space grows roughly linearly with the repetition count.
        assert rows[-1].measurements["mean_space_bits"] > 5 * rows[0].measurements["mean_space_bits"]

    def test_buckets_ablation(self, workload):
        stream, truth = workload
        rows = []
        errors = {}
        for buckets in (50, 200, 800, 3200):
            stats = _run_optimal(stream, truth, buckets_per_repetition=buckets)
            errors[buckets] = stats["mean_max_error_over_m"]
            rows.append(ExperimentRow(
                "ABL buckets", {"buckets": buckets}, stats,
            ))
        print_experiment_table(
            "ABL: Algorithm 2 — buckets per repetition (hash collision error) vs error and space",
            rows, ["label", "buckets", "mean_max_error_over_m", "min_recall", "mean_space_bits"],
        )
        # Collisions dominate with very few buckets: error decreases as buckets grow.
        assert errors[3200] <= errors[50]
        assert rows[-1].measurements["min_recall"] == 1.0

    def test_epoch_scale_ablation(self, workload):
        stream, truth = workload
        rows = []
        for epoch_scale in (1e-6, 1e-2, 1.0, 100.0):
            stats = _run_optimal(stream, truth, epoch_scale=epoch_scale)
            rows.append(ExperimentRow(
                "ABL epoch scale", {"epoch_scale": epoch_scale}, stats,
            ))
        print_experiment_table(
            "ABL: Algorithm 2 — accelerated-counter epoch scale "
            "(paper: 1e-6 for l=1e5/eps^2; this repo defaults to 1.0)",
            rows, ["label", "epoch_scale", "mean_max_error_over_m", "min_recall", "mean_space_bits"],
        )
        by_scale = {row.parameters["epoch_scale"]: row.measurements for row in rows}
        # With the paper's 1e-6 scale the epochs never activate on a stream this short,
        # so every estimate collapses to ~0 and nothing clears the reporting threshold ...
        assert by_scale[1e-6]["min_recall"] == 0.0
        # ... while the practical scales keep full recall and the +-eps guarantee.
        assert by_scale[1.0]["min_recall"] == 1.0
        assert by_scale[1.0]["mean_max_error_over_m"] <= EPSILON
        # Larger scales make the counters activate earlier (and cap at probability 1
        # sooner), buying accuracy with space: both move monotonically with the scale.
        assert by_scale[100.0]["mean_space_bits"] >= by_scale[1.0]["mean_space_bits"] >= \
            by_scale[1e-6]["mean_space_bits"]
        assert by_scale[100.0]["mean_max_error_over_m"] <= by_scale[1e-2]["mean_max_error_over_m"]


class TestAlgorithm1Ablations:
    def test_sample_constant_ablation(self, workload):
        stream, truth = workload
        rows = []
        for constant in (0.5, 2.0, 6.0, 24.0):
            errors, recalls, space = [], [], []
            for seed in range(3):
                algo = SimpleListHeavyHitters(
                    epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
                    stream_length=STREAM_LENGTH, rng=RandomSource(200 + seed),
                )
                # Rescale the sampling rate to emulate a different Lemma 3 constant.
                algo.target_sample_size = int(algo.target_sample_size * constant / 6.0)
                algo._sampler = type(algo._sampler)(
                    min(1.0, 6.0 * algo.target_sample_size / STREAM_LENGTH),
                    rng=RandomSource(300 + seed),
                )
                algo.consume(stream)
                accuracy = evaluate_heavy_hitters(algo.report(), truth)
                errors.append(accuracy.max_frequency_error / STREAM_LENGTH)
                recalls.append(accuracy.recall)
                space.append(algo.space_bits())
            rows.append(ExperimentRow(
                "ABL sample constant", {"constant": constant},
                {
                    "mean_max_error_over_m": sum(errors) / len(errors),
                    "min_recall": min(recalls),
                    "mean_space_bits": sum(space) / len(space),
                },
            ))
        print_experiment_table(
            "ABL: Algorithm 1 — Lemma 3 sampling constant vs error (smaller samples, larger error)",
            rows, ["label", "constant", "mean_max_error_over_m", "min_recall", "mean_space_bits"],
        )
        errors_by_constant = {row.parameters["constant"]: row.measurements["mean_max_error_over_m"]
                              for row in rows}
        # The full-constant setting must meet the eps guarantee; the heavily starved
        # sampler (12x fewer samples) is allowed to be worse.
        assert errors_by_constant[6.0] <= EPSILON
        assert errors_by_constant[24.0] <= EPSILON
        assert errors_by_constant[0.5] >= errors_by_constant[24.0]
