"""Experiment LB — the lower-bound reductions of Section 4, run end to end.

A space lower bound cannot be "measured", but its *reduction* can be executed: if the
streaming algorithm meets its accuracy guarantee, Bob must decode Alice's input
correctly, and the algorithm's state at the hand-off point (the "message") must carry at
least the information content of that input.  This module runs every reduction
(Theorems 9, 10, 11, 12, 14) with the corresponding algorithm from this package and
tabulates: decode success rate, measured message (state) size, and the
information-theoretic floor for the instance.
"""

import pytest

from bench_common import print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.core.borda import ListBorda
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximin import ListMaximin
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.lowerbounds.greater_than import GreaterThanInstance, GreaterThanReduction
from repro.lowerbounds.indexing import (
    HeavyHittersIndexingReduction,
    MaximumIndexingReduction,
    MinimumIndexingReduction,
)
from repro.lowerbounds.maximin_gadget import MaximinGadgetInstance, MaximinIndexingReduction
from repro.lowerbounds.perm import BordaPermReduction, PermInstance
from repro.primitives.rng import RandomSource


class TestReductionsEndToEnd:
    def test_theorem9_indexing_to_heavy_hitters(self):
        reduction = HeavyHittersIndexingReduction(epsilon=0.1, phi=0.25, stream_length=4000)
        rows, correct = [], 0
        trials = 6
        for seed in range(trials):
            instance = reduction.random_instance(rng=RandomSource(seed))
            run = reduction.run(
                instance,
                lambda n, m, s=seed: SimpleListHeavyHitters(
                    epsilon=0.1, phi=0.25, universe_size=n, stream_length=m,
                    rng=RandomSource(1000 + s),
                ),
            )
            correct += run.correct
            rows.append(ExperimentRow(
                "Thm 9", {"trial": seed},
                {"decoded_ok": float(run.correct),
                 "message_bits": float(run.message_bits),
                 "information_floor_bits": run.information_lower_bound_bits},
            ))
        print_experiment_table(
            "LB / Theorem 9: Indexing -> (eps, phi)-Heavy Hitters (Algorithm 1 as channel)",
            rows, ["label", "trial", "decoded_ok", "message_bits", "information_floor_bits"],
        )
        assert correct >= trials - 1

    def test_theorem10_indexing_to_maximum(self):
        reduction = MaximumIndexingReduction(epsilon=0.25, stream_length=4000)
        rows, correct = [], 0
        trials = 5
        for seed in range(trials):
            instance = reduction.random_instance(rng=RandomSource(50 + seed))
            run = reduction.run(
                instance,
                lambda n, m, s=seed: EpsilonMaximum(
                    epsilon=0.05, universe_size=n, stream_length=m,
                    rng=RandomSource(2000 + s),
                ),
            )
            correct += run.correct
            rows.append(ExperimentRow(
                "Thm 10", {"trial": seed},
                {"decoded_ok": float(run.correct),
                 "message_bits": float(run.message_bits),
                 "information_floor_bits": run.information_lower_bound_bits},
            ))
        print_experiment_table(
            "LB / Theorem 10: Indexing -> eps-Maximum",
            rows, ["label", "trial", "decoded_ok", "message_bits", "information_floor_bits"],
        )
        assert correct >= trials - 1

    def test_theorem11_indexing_to_minimum(self):
        reduction = MinimumIndexingReduction(epsilon=0.4)
        rows, correct = [], 0
        trials = 6
        for seed in range(trials):
            instance = reduction.random_instance(rng=RandomSource(70 + seed))
            run = reduction.run(
                instance,
                lambda n, m, s=seed: EpsilonMinimum(
                    epsilon=0.05, universe_size=n, stream_length=max(1, m),
                    delta=0.05, rng=RandomSource(3000 + s),
                ),
            )
            correct += run.correct
            rows.append(ExperimentRow(
                "Thm 11", {"trial": seed},
                {"decoded_ok": float(run.correct),
                 "message_bits": float(run.message_bits),
                 "information_floor_bits": run.information_lower_bound_bits},
            ))
        print_experiment_table(
            "LB / Theorem 11: Indexing (binary) -> eps-Minimum",
            rows, ["label", "trial", "decoded_ok", "message_bits", "information_floor_bits"],
        )
        assert correct >= trials - 2

    def test_theorem12_perm_to_borda(self):
        rows, correct = [], 0
        trials = 3
        for seed in range(trials):
            instance = PermInstance.random(8, 4, rng=RandomSource(90 + seed))
            reduction = BordaPermReduction(instance)
            run = reduction.run(
                lambda n, m, s=seed: ListBorda(
                    epsilon=0.02, num_candidates=n, stream_length=m,
                    rng=RandomSource(4000 + s),
                ),
                repetitions=40,
            )
            correct += run.correct
            rows.append(ExperimentRow(
                "Thm 12", {"trial": seed},
                {"decoded_ok": float(run.correct),
                 "message_bits": float(run.message_bits),
                 "information_floor_bits": run.information_lower_bound_bits},
            ))
        print_experiment_table(
            "LB / Theorem 12: eps-Perm -> eps-Borda",
            rows, ["label", "trial", "decoded_ok", "message_bits", "information_floor_bits"],
        )
        assert correct == trials

    def test_theorem13_maximin_gadget(self):
        rows, correct = [], 0
        trials = 3
        for seed in range(trials):
            instance = MaximinGadgetInstance.random(4, 64, rng=RandomSource(600 + seed))
            reduction = MaximinIndexingReduction(instance)
            run = reduction.run(
                lambda n, m, s=seed: ListMaximin(
                    epsilon=0.02, num_candidates=n, stream_length=m,
                    rng=RandomSource(700 + s),
                ),
            )
            correct += run.correct
            rows.append(ExperimentRow(
                "Thm 13", {"trial": seed},
                {"decoded_ok": float(run.correct),
                 "hamming_distance": float(run.metadata["hamming_distance"]),
                 "message_bits": float(run.message_bits),
                 "information_floor_bits": run.information_lower_bound_bits},
            ))
        print_experiment_table(
            "LB / Theorem 13: Indexing -> eps-Maximin via the Hamming-distance gadget",
            rows,
            ["label", "trial", "decoded_ok", "hamming_distance", "message_bits",
             "information_floor_bits"],
        )
        assert correct == trials

    def test_theorem14_greater_than(self):
        reduction = GreaterThanReduction(epsilon=0.2)
        cases = [
            GreaterThanInstance(x=9, y=5),
            GreaterThanInstance(x=5, y=12),
            GreaterThanInstance(x=13, y=2),
            GreaterThanInstance(x=2, y=8),
        ]
        rows, correct = [], 0
        for index, instance in enumerate(cases):
            run = reduction.run(
                instance,
                lambda n, m, s=index: EpsilonMaximum(
                    epsilon=0.2, universe_size=n, stream_length=m,
                    rng=RandomSource(5000 + s),
                ),
            )
            correct += run.correct
            rows.append(ExperimentRow(
                "Thm 14", {"x": instance.x, "y": instance.y},
                {"decoded_ok": float(run.correct),
                 "stream_length": float(run.metadata["stream_length"]),
                 "message_bits": float(run.message_bits)},
            ))
        print_experiment_table(
            "LB / Theorem 14: Greater-Than -> 2-item eps-winner (the log log m term)",
            rows, ["label", "x", "y", "decoded_ok", "stream_length", "message_bits"],
        )
        assert correct == len(cases)


class TestTimedReductionKernels:
    def test_indexing_reduction_kernel(self, benchmark):
        reduction = HeavyHittersIndexingReduction(epsilon=0.1, phi=0.25, stream_length=2000)
        instance = reduction.random_instance(rng=RandomSource(7))

        def run():
            return reduction.run(
                instance,
                lambda n, m: SimpleListHeavyHitters(
                    epsilon=0.1, phi=0.25, universe_size=n, stream_length=m,
                    rng=RandomSource(8),
                ),
            )

        benchmark.pedantic(run, rounds=3, iterations=1)
