"""Shared helpers for the benchmark suite.

Every ``bench_table1_*.py`` module reproduces one row of the paper's Table 1: it runs
the corresponding algorithm across a parameter sweep, measures the bit-level space with
the same :class:`~repro.primitives.space.SpaceMeter` accounting the library uses
everywhere, compares the measured scaling shape against the closed-form bound from
:mod:`repro.lowerbounds.bounds`, and times the update path with ``pytest-benchmark``.

The printed tables are the ones recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Mapping, Sequence

# Ensure the src layout is importable when the package is not installed.
import os

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.harness import ExperimentRow, format_table  # noqa: E402
from repro.analysis.theory import scaling_exponent  # noqa: E402


def print_experiment_table(title: str, rows: Iterable[ExperimentRow], columns: Sequence[str]) -> None:
    """Print one experiment's table so ``pytest -s`` / the tee'd bench log records it."""
    print()
    print(f"### {title}")
    print(format_table(rows, columns=columns))
    print()


def check_scaling_shape(
    parameter_values: Sequence[float],
    measured_bits: Sequence[float],
    bound_bits: Sequence[float],
    slack: float = 0.6,
) -> None:
    """Assert the measured space grows with the same log-log slope as the bound formula.

    ``slack`` is the allowed absolute difference between the two exponents; the paper
    states asymptotic bounds, so the shape (slope), not the constant, is what a
    reproduction can check.
    """
    measured_exponent = scaling_exponent(parameter_values, measured_bits)
    bound_exponent = scaling_exponent(parameter_values, bound_bits)
    assert abs(measured_exponent - bound_exponent) <= slack, (
        f"measured exponent {measured_exponent:.2f} vs bound exponent {bound_exponent:.2f}"
    )
