"""Experiment T1-BORDA — Table 1, row 4: ε-Borda / (ε,ϕ)-List Borda.

Paper claim: space O(n (log n + log ε⁻¹) + log log m) bits (Theorem 5), lower bound
Ω(n (log ε⁻¹ + log n) + log log m) (Theorem 12 plus the trivial n log n term).

Measured here:

* space sweep over the number of candidates n (shape ~ n log n),
* space sweep over ε (shape: only log ε⁻¹ per candidate — flat compared to maximin),
* Borda score estimation error vs the ±εmn guarantee on Mallows vote streams,
* timed updates.
"""

import pytest

from bench_common import check_scaling_shape, print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.core.borda import ListBorda
from repro.lowerbounds.bounds import borda_lower_bound_bits, borda_upper_bound_bits
from repro.primitives.rng import RandomSource
from repro.voting.generators import mallows_votes
from repro.voting.rankings import Ranking
from repro.voting.scores import borda_scores

NUM_VOTES = 4000


def _votes(num_candidates, seed=0, dispersion=0.5):
    return mallows_votes(NUM_VOTES, num_candidates, dispersion=dispersion,
                         rng=RandomSource(seed))


def _algo(epsilon, num_candidates, seed=1):
    return ListBorda(
        epsilon=epsilon, num_candidates=num_candidates, stream_length=NUM_VOTES,
        rng=RandomSource(seed),
    )


class TestSpaceScaling:
    def test_space_sweep_candidates(self):
        epsilon = 0.05
        candidate_counts = [4, 8, 16, 32]
        rows, measured = [], []
        for n in candidate_counts:
            votes = _votes(n, seed=n)
            algo = _algo(epsilon, n, seed=n + 1)
            algo.consume(votes)
            bits = float(algo.space_bits())
            measured.append(bits)
            rows.append(ExperimentRow(
                "T1-BORDA n sweep", {"candidates": n},
                {"space_bits": bits,
                 "upper_bound_bits": borda_upper_bound_bits(epsilon, n, NUM_VOTES),
                 "lower_bound_bits": borda_lower_bound_bits(epsilon, n, NUM_VOTES)},
            ))
        print_experiment_table(
            "T1-BORDA: space vs number of candidates (eps=0.05, m=4k votes)", rows,
            ["label", "candidates", "space_bits", "upper_bound_bits", "lower_bound_bits"],
        )
        bound = [borda_upper_bound_bits(epsilon, n, NUM_VOTES) for n in candidate_counts]
        check_scaling_shape(candidate_counts, measured, bound, slack=0.5)

    def test_space_sweep_epsilon_is_logarithmic(self):
        """Halving eps adds only ~n bits (one extra bit per counter), not a factor."""
        n = 10
        votes = _votes(n, seed=5)
        rows, measured = [], []
        for inverse_epsilon in (10, 40, 160):
            epsilon = 1.0 / inverse_epsilon
            algo = _algo(epsilon, n, seed=6)
            algo.consume(votes)
            measured.append(float(algo.space_bits()))
            rows.append(ExperimentRow(
                "T1-BORDA eps sweep", {"1/eps": inverse_epsilon},
                {"space_bits": measured[-1],
                 "upper_bound_bits": borda_upper_bound_bits(epsilon, n, NUM_VOTES)},
            ))
        print_experiment_table(
            "T1-BORDA: space vs 1/eps (n=10) — logarithmic dependence only", rows,
            ["label", "1/eps", "space_bits", "upper_bound_bits"],
        )
        # 16x finer epsilon costs at most ~2x the space (log-factor growth).
        assert measured[-1] <= 2.5 * measured[0]


class TestAccuracy:
    def test_borda_score_error_within_eps_mn(self):
        epsilon = 0.05
        rows = []
        for n, dispersion in ((6, 0.3), (12, 0.5), (20, 0.8)):
            votes = _votes(n, seed=n * 7, dispersion=dispersion)
            truth = borda_scores(votes)
            algo = _algo(epsilon, n, seed=n * 7 + 1)
            algo.consume(votes)
            report = algo.report()
            max_error = max(
                abs(report.scores[c] - truth[c]) for c in range(n)
            ) / (NUM_VOTES * n)
            winner_matches = report.approximate_winner() == min(
                truth, key=lambda c: (-truth[c], c)
            )
            rows.append(ExperimentRow(
                "T1-BORDA accuracy", {"candidates": n, "dispersion": dispersion},
                {"max_error_over_mn": max_error, "winner_recovered": float(winner_matches)},
            ))
            assert max_error <= epsilon
        print_experiment_table(
            "T1-BORDA: score error / (m*n) on Mallows streams (guarantee: <= eps = 0.05)",
            rows, ["label", "candidates", "dispersion", "max_error_over_mn", "winner_recovered"],
        )


class TestUpdateThroughput:
    def test_borda_updates(self, benchmark):
        n = 10
        votes = _votes(n, seed=9)[:1500]
        algo = _algo(0.05, n, seed=10)

        def run():
            for vote in votes:
                algo.insert(vote)

        benchmark.pedantic(run, rounds=3, iterations=1)
