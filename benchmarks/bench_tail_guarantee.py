"""Experiment TAIL — the classical ±εm guarantee vs the residual (tail) guarantee.

The paper's introduction situates its result against Berinde et al. [BICS10], whose
algorithms achieve the stronger error bound ``(ε/k)·F₁^res(k)`` (relative to the mass
*outside* the top-k items) at the cost of ``O(k ε⁻¹ log(mn))`` bits.  The paper
deliberately targets the classical formulation; this module quantifies, on the same
workloads the other benchmarks use, how different the two error budgets actually are —
i.e. when the choice matters — and checks that the counter-based summaries in this
package already satisfy their known residual-error bound.
"""

import pytest

from bench_common import print_experiment_table

from repro.analysis.harness import ExperimentRow
from repro.analysis.tail import (
    counter_summary_residual_bound,
    guarantee_comparison,
    residual_mass,
)
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.primitives.rng import RandomSource
from repro.streams.generators import zipfian_stream
from repro.streams.truth import exact_frequencies

STREAM_LENGTH = 25000
UNIVERSE = 4000
EPSILON = 0.02
K = 10


class TestGuaranteeComparison:
    def test_budgets_across_skews(self):
        rows = []
        ratios = {}
        for skew in (0.8, 1.1, 1.5, 2.0):
            stream = zipfian_stream(STREAM_LENGTH, UNIVERSE, skew=skew,
                                    rng=RandomSource(int(skew * 10)))
            truth = exact_frequencies(stream)
            comparison = guarantee_comparison(truth, STREAM_LENGTH, EPSILON, K)
            ratios[skew] = comparison["tail_over_classical"]
            rows.append(ExperimentRow(
                "TAIL budgets", {"zipf_skew": skew},
                {
                    "classical_budget_items": comparison["classical_budget"],
                    "tail_budget_items": comparison["tail_budget"],
                    "tail_over_classical": comparison["tail_over_classical"],
                    "residual_fraction": comparison["residual_fraction"],
                },
            ))
        print_experiment_table(
            f"TAIL: classical eps*m budget vs (eps/k)*F_res(k) budget, eps={EPSILON}, k={K}",
            rows,
            ["label", "zipf_skew", "classical_budget_items", "tail_budget_items",
             "tail_over_classical", "residual_fraction"],
        )
        # The more skewed the stream, the (weakly) smaller the residual budget relative
        # to the classical one — that is the regime where [BICS10] style guarantees pay.
        assert ratios[2.0] <= ratios[1.1] <= ratios[0.8] + 1e-9

    def test_paper_algorithm_error_vs_both_budgets(self):
        """Algorithm 1 meets its classical budget; on skewed streams its realized error
        is also well under the (much smaller) residual budget for these parameters."""
        rows = []
        for skew in (1.1, 1.5):
            stream = zipfian_stream(STREAM_LENGTH, UNIVERSE, skew=skew,
                                    rng=RandomSource(int(skew * 100)))
            truth = exact_frequencies(stream)
            algo = SimpleListHeavyHitters(
                epsilon=EPSILON, phi=0.05, universe_size=UNIVERSE,
                stream_length=STREAM_LENGTH, rng=RandomSource(int(skew * 1000)),
            )
            algo.consume(stream)
            report = algo.report()
            realized = report.max_frequency_error(truth)
            comparison = guarantee_comparison(truth, STREAM_LENGTH, EPSILON, K)
            rows.append(ExperimentRow(
                "TAIL realized", {"zipf_skew": skew},
                {
                    "realized_error_items": realized,
                    "classical_budget_items": comparison["classical_budget"],
                    "tail_budget_items": comparison["tail_budget"],
                },
            ))
            assert realized <= comparison["classical_budget"]
        print_experiment_table(
            "TAIL: Algorithm 1 realized max error vs the two budgets", rows,
            ["label", "zipf_skew", "realized_error_items", "classical_budget_items",
             "tail_budget_items"],
        )


class TestCounterSummariesResidualBound:
    @pytest.mark.parametrize("skew", [1.1, 1.5])
    def test_misra_gries_and_space_saving_meet_residual_bound(self, skew):
        stream = zipfian_stream(STREAM_LENGTH, UNIVERSE, skew=skew,
                                rng=RandomSource(int(skew * 7)))
        truth = exact_frequencies(stream)
        rows = []
        for label, algo in (
            ("misra-gries", MisraGries(epsilon=EPSILON, universe_size=UNIVERSE)),
            ("space-saving", SpaceSaving(epsilon=EPSILON, universe_size=UNIVERSE)),
        ):
            algo.consume(stream)
            capacity = int(1 / EPSILON) + 1
            bound = counter_summary_residual_bound(truth, capacity, K)
            worst = max(abs(algo.estimate(item) - count) for item, count in truth.items())
            rows.append(ExperimentRow(
                "TAIL residual bound", {"algorithm": label, "zipf_skew": skew},
                {
                    "worst_error_items": worst,
                    "residual_bound_items": bound,
                    "classical_bound_items": STREAM_LENGTH / capacity,
                    "residual_mass_fraction": residual_mass(truth, K) / STREAM_LENGTH,
                },
            ))
            assert worst <= bound + 1e-9
        print_experiment_table(
            f"TAIL: counter summaries vs the F_res(k)/(capacity-k+1) bound (skew={skew})",
            rows,
            ["label", "algorithm", "zipf_skew", "worst_error_items", "residual_bound_items",
             "classical_bound_items", "residual_mass_fraction"],
        )
