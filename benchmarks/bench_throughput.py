"""Experiments THROUGHPUT, SHARDING and ASYNC — batched, sharded and pipelined ingestion.

``--mode throughput`` (the default) measures items/second for the reference per-item
``insert`` path and for the chunked ``insert_many`` fast path (geometric skip-ahead
sampling, vectorized Carter–Wegman hashing, pre-aggregated counter merges) on a
Zipf(1.2) stream, and writes the results to ``BENCH_throughput.json``.  This is the
experiment behind the repository's claim that the paper's O(1)-amortized-update
guarantee survives contact with the Python interpreter once ingestion is batched.

``--mode sharded`` measures the sharded subsystem (:mod:`repro.sharding`) for
k ∈ {1, 2, 4, 8} shards: wall-clock of the serial and ``multiprocessing``-parallel
drivers, combined space, and the merged report's recall/precision against a
single-instance run on the same stream, written to ``BENCH_sharding.json``.  The
parallel numbers are only meaningful with real cores — the JSON records
``cpu_count`` so a single-core container's inversion (parallel >= serial, pure
overhead) is visible for what it is.

``--mode async`` measures the pipelined replay subsystem (:mod:`repro.pipeline`):
the trace is saved to disk and replayed twice per shard count — serially through
``run_chunks`` and through the bounded-queue producer/consumer pipeline — with
identical seeds, recording the ingest/combine time split and verifying the two
reports are bit-for-bit identical.  Written to ``BENCH_async.json``.

``--mode service`` measures the network service layer (:mod:`repro.service`): the
trace is saved to disk, then per shard count replayed four ways with identical
seeds — offline ``run_chunks``, pushed to a real :class:`~repro.service.IngestServer`
over a loopback socket one round-trip per batch (``finish`` + ``query``), pushed
through the credit-windowed ``push_stream`` pipeline (plus a mid-ingest
query-latency series against the snapshot cache), and served with a mid-stream
``checkpoint`` → server restart → resumed push — recording both push throughputs
and the three bit-for-bit equalities (``identical_report`` for served-, pipelined-,
and resumed-vs-offline).  Written to ``BENCH_service.json``.

``--mode replication`` measures the replicated-fault-tolerance layer
(:mod:`repro.replication`): for R ∈ {1, 3, 5} the trace is replayed through a
:class:`~repro.replication.ReplicaGroup` of independently-seeded replicas,
recording the R× ingest overhead versus a single instance, the bit-for-bit
equality of replica 0 against the unreplicated run, and — for R >= 3 — a
scripted kill of one replica mid-ingest: the degraded-window answers are
checked against the exact prefix frequencies (Definition 1 on the survivors),
the supervisor's re-seeded replacement is compared bit for bit against an
uninterrupted equal-seed reference, and the quarantine-to-re-admit failover
time is recorded.  Written to ``BENCH_replication.json``.

``--mode observability`` measures the observability layer itself
(:mod:`repro.observability`): the identical stream is pushed through the
credit-windowed service pipeline twice per pass — once into a disabled
:class:`~repro.observability.MetricRegistry`, once enabled — asserting the two
final reports are bit-for-bit identical and recording the throughput tax of
metrics-on (claimed and checked < 5%); a second leg replays the replicated
fault-injection scenario with the Prometheus HTTP sidecar up and asserts a live
scrape surfaces the failover counter and populated latency histograms.  Written
to ``BENCH_observability.json``.

``--mode tenancy`` measures the multi-stream service layer
(:class:`~repro.service.StreamRegistry`): one server hosts four independently
generated Zipf traces as named streams with ``max_live_streams`` capped below
the stream count, so round-robin pushes force every stream through the LRU
evict → checkpoint-spill → lazily-restore path; for a deterministic
(Misra–Gries) and a randomized (optimal, Thm 2) sketch it records the per-stream
bit-for-bit equality against each stream's solo offline replay
(``identical_report``), the forced eviction/restore counts, and the aggregate
push throughput with eviction churn in the loop.  Written to
``BENCH_tenancy.json``.

``--mode durability`` measures the crash-durable ingest layer
(:mod:`repro.durability`): the push path is timed unjournaled and under each
write-ahead-log fsync policy (``off``, ``interval:8``, ``always``) asserting
the journal never perturbs the report; recovery of the full-trace journal is
timed; and a kill-9 chaos sweep crashes a real served subprocess (external
``SIGKILL`` and the in-process ``crash:after_chunk`` torn-record fault) at
several acked-batch counts, restarts it on the same WAL directory, and checks
``no_acked_loss`` plus bit-for-bit equality against an uninterrupted offline
replay.  Written to ``BENCH_durability.json``.  Every mode additionally embeds
a compact ``metrics`` section (queue-depth high-water mark, chunk/items totals,
snapshot-cache hits/misses) in its artifact.

Every mode runs ``--warmup`` discarded passes plus ``--repeats`` recorded passes
and stores median/min/max, so the recorded numbers are not single-shot noise.

Run directly (the full 10^6-item stream takes a few minutes, dominated by the per-item
reference path)::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --mode sharded

or as a CI smoke test with a shorter stream::

    PYTHONPATH=src python benchmarks/bench_throughput.py --length 100000 --output smoke.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

# Ensure the src layout is importable when the package is not installed.
import os

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.baselines.count_min import CountMinSketch  # noqa: E402
from repro.baselines.count_sketch import CountSketch  # noqa: E402
from repro.baselines.lossy_counting import LossyCounting  # noqa: E402
from repro.baselines.misra_gries import MisraGries  # noqa: E402
from repro.baselines.space_saving import SpaceSaving  # noqa: E402
from repro.baselines.sticky_sampling import StickySampling  # noqa: E402
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters  # noqa: E402
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters  # noqa: E402
from repro.primitives.rng import RandomSource  # noqa: E402
from repro.streams.generators import zipfian_stream  # noqa: E402

EPSILON = 0.01
PHI = 0.05
DELTA = 0.1
SKEW = 1.2
UNIVERSE = 1 << 16
DEFAULT_LENGTH = 10**6
DEFAULT_BATCH = 1 << 18
SEED = 20160626  # PODS 2016


def sketch_factories(universe: int, stream_length: int):
    """The eight sketches of the throughput experiment, fresh instance per call."""
    return {
        "optimal (Thm 2)": lambda seed: OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=universe,
            stream_length=stream_length, rng=RandomSource(seed),
        ),
        "simple (Thm 1)": lambda seed: SimpleListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=universe,
            stream_length=stream_length, rng=RandomSource(seed),
        ),
        "misra-gries": lambda seed: MisraGries(EPSILON, universe),
        "space-saving": lambda seed: SpaceSaving(EPSILON, universe),
        "count-min": lambda seed: CountMinSketch(EPSILON, DELTA, universe, rng=RandomSource(seed)),
        "count-sketch": lambda seed: CountSketch(0.05, DELTA, universe, rng=RandomSource(seed)),
        "lossy-counting": lambda seed: LossyCounting(EPSILON, universe),
        "sticky-sampling": lambda seed: StickySampling(
            EPSILON, PHI, DELTA, universe, rng=RandomSource(seed)
        ),
    }


def spread(values) -> dict:
    """Median/min/max of a repeat series — the shape every ``BENCH_*.json`` records."""
    return {
        "median": statistics.median(values),
        "min": min(values),
        "max": max(values),
    }


def measure(build, stream, batch_size=None, warmup=1, repeats=3) -> dict:
    """Warmed, repeated timing of one ingestion path; a fresh sketch per run.

    Warmup runs are discarded (they pay import/JIT/allocator effects); the
    recorded numbers are the median across ``repeats`` timed runs, with the
    min/max spread alongside so single-shot noise is visible for what it is.
    """
    elapsed: list = []
    algorithm = None
    for index in range(warmup + repeats):
        algorithm = build(1)
        start = time.perf_counter()
        algorithm.consume(stream, batch_size=batch_size)
        seconds = time.perf_counter() - start
        if index >= warmup:
            elapsed.append(seconds)
    rates = [len(stream) / s if s > 0 else float("inf") for s in elapsed]
    return {
        "total_seconds": statistics.median(elapsed),
        "items_per_second": statistics.median(rates),
        "space_bits": int(algorithm.space_bits()),
        "repeats": repeats,
        "warmup": warmup,
        "total_seconds_stats": spread(elapsed),
        "items_per_second_stats": spread(rates),
    }


def run(length: int, batch_size: int, output: str, warmup: int = 1, repeats: int = 3) -> dict:
    stream = zipfian_stream(length, UNIVERSE, skew=SKEW, rng=RandomSource(SEED))
    results = {
        "experiment": "throughput",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length": length, "universe": UNIVERSE,
            "seed": SEED,
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "delta": DELTA, "batch_size": batch_size,
            "warmup": warmup, "repeats": repeats,
        },
        "sketches": {},
    }
    for label, build in sketch_factories(UNIVERSE, length).items():
        per_item = measure(build, stream, warmup=warmup, repeats=repeats)
        batched = measure(build, stream, batch_size=batch_size, warmup=warmup, repeats=repeats)
        speedup = batched["items_per_second"] / per_item["items_per_second"]
        results["sketches"][label] = {
            "per_item": per_item,
            "insert_many": batched,
            "speedup": speedup,
        }
        print(
            f"{label:16s} per-item {per_item['items_per_second']:>12,.0f} it/s   "
            f"insert_many {batched['items_per_second']:>12,.0f} it/s   "
            f"speedup {speedup:5.1f}x"
        )
    results["metrics"] = _metrics_section()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


SHARD_COUNTS = (1, 2, 4, 8)


def _sharded_factory(seed_base, universe, stream_length):
    """Per-shard Algorithm 2 factory: one distinct seed per shard index."""

    def build(shard: int) -> OptimalListHeavyHitters:
        return OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=universe,
            stream_length=stream_length, rng=RandomSource(seed_base + shard),
        )

    return build


def _row_payload(row, length: int) -> dict:
    """JSON payload for one harness row (single or sharded, either driver)."""
    measurements = row.measurements
    seconds = measurements["total_seconds"]
    payload = {
        "total_seconds": seconds,
        "ingest_seconds": measurements.get("ingest_seconds"),
        "combine_seconds": measurements.get("combine_seconds"),
        "items_per_second": length / seconds if seconds else float("inf"),
        "space_bits": int(measurements["space_bits"]),
        "accuracy": {
            "recall": measurements["recall"],
            "precision": measurements["precision"],
            "max_error_fraction_of_m": measurements["max_error_fraction_of_m"],
            "reported": int(measurements["reported"]),
            "satisfies_definition": bool(measurements["satisfies_definition"]),
        },
    }
    if "report_symmetric_difference" in measurements:
        payload["report_symmetric_difference_vs_single"] = int(
            measurements["report_symmetric_difference"]
        )
    return payload


def _merge_timing(payloads: list) -> dict:
    """One payload out of a repeat series: last run's values + median/min/max stats."""
    merged = dict(payloads[-1])
    merged["timing_stats"] = {
        "repeats": len(payloads),
        "total_seconds": spread([p["total_seconds"] for p in payloads]),
        "items_per_second": spread([p["items_per_second"] for p in payloads]),
    }
    return merged


def run_sharded(length: int, batch_size: int, output: str,
                warmup: int = 1, repeats: int = 3) -> dict:
    """Experiment SHARDING: serial vs parallel sharded drivers + merged accuracy.

    Delegates the actual sharded-vs-single comparison to
    ``repro.analysis.harness.run_sharded_comparison`` (the combine-phase accuracy
    experiment the ROADMAP cites), once per driver, so the benchmark and the harness
    can never measure different things.  The whole comparison runs ``warmup``
    discarded times plus ``repeats`` recorded times (identical seeds every pass, so
    only the timing varies); each payload carries median/min/max ``timing_stats``.
    """
    from repro.analysis.harness import run_sharded_comparison, run_single_reference  # noqa: E402
    from repro.streams.truth import exact_frequencies  # noqa: E402

    stream = zipfian_stream(length, UNIVERSE, skew=SKEW, rng=RandomSource(SEED))
    truth = exact_frequencies(stream)
    factory = _sharded_factory(SEED + 1, UNIVERSE, length)
    results = {
        "experiment": "sharding",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length": length, "universe": UNIVERSE,
            "seed": SEED,
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "batch_size": batch_size,
            "sketch": "optimal (Thm 2)", "shard_counts": list(SHARD_COUNTS),
            "warmup": warmup, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
        "single": None,
        "sharded": {str(shards): {} for shards in SHARD_COUNTS},
    }
    single_payloads: list = []
    sharded_payloads: dict = {
        str(shards): {"serial": [], "parallel": []} for shards in SHARD_COUNTS
    }
    for index in range(warmup + max(1, repeats)):
        record = index >= warmup
        # One reference run, shared by both drivers' comparisons.
        single_row, single_report = run_single_reference(
            factory, stream, PHI, batch_size=batch_size, true_frequencies=truth
        )
        if record:
            single_payloads.append(_row_payload(single_row, length))
        # Parallel first: the fork-based driver pays copy-on-write for every object on
        # the parent heap.  The reference run above is unavoidable pre-fork heap (the
        # comparison needs its report), but ordering parallel before the serial sharded
        # runs at least keeps k more consumed sketches off the heap when forking.
        for parallel in (True, False):
            rows = run_sharded_comparison(
                factory=factory,
                stream=stream,
                phi=PHI,
                shard_counts=SHARD_COUNTS,
                batch_size=batch_size,
                parallel=parallel,
                rng=RandomSource(SEED + (2 if parallel else 3)),
                reference_report=single_report,
                true_frequencies=truth,
            )
            driver = "parallel" if parallel else "serial"
            for shards, row in zip(SHARD_COUNTS, rows):
                if record:
                    sharded_payloads[str(shards)][driver].append(_row_payload(row, length))
    results["single"] = _merge_timing(single_payloads)
    for shards in SHARD_COUNTS:
        for driver in ("serial", "parallel"):
            results["sharded"][str(shards)][driver] = _merge_timing(
                sharded_payloads[str(shards)][driver]
            )
    single = results["single"]
    print(
        f"single          {single['total_seconds']:7.2f}s   "
        f"recall {single['accuracy']['recall']:.2f}   "
        f"precision {single['accuracy']['precision']:.2f}"
    )
    for shards in SHARD_COUNTS:
        row = results["sharded"][str(shards)]
        row["parallel_speedup_over_serial"] = (
            row["serial"]["total_seconds"] / row["parallel"]["total_seconds"]
            if row["parallel"]["total_seconds"]
            else float("inf")
        )
        print(
            f"k={shards}  serial {row['serial']['total_seconds']:6.2f}s   "
            f"parallel {row['parallel']['total_seconds']:6.2f}s   "
            f"speedup {row['parallel_speedup_over_serial']:4.2f}x   "
            f"recall {row['serial']['accuracy']['recall']:.2f}   "
            f"precision {row['serial']['accuracy']['precision']:.2f}"
        )
    results["metrics"] = _metrics_section()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


ASYNC_SHARD_COUNTS = (1, 4)
ASYNC_CHUNK = 1 << 16
ASYNC_QUEUE_DEPTH = 4


def run_async(length: int, batch_size: int, output: str,
              warmup: int = 1, repeats: int = 3) -> dict:
    """Experiment ASYNC: serial vs queue-pipelined disk replay + report equality.

    The trace is written to disk first (the pipeline exists to overlap *file replay*
    with compute), then :func:`repro.analysis.harness.run_pipelined_comparison`
    replays it twice per shard count — serial ``run_chunks`` and the
    :class:`~repro.pipeline.PipelinedExecutor` queue — with identical seeds, so the
    JSON records both the ingest/combine time split and the bit-for-bit report
    equality the pipeline contract promises (``identical_report``).  As with the
    parallel sharded driver, the overlap only buys wall-clock when parsing and
    compute can actually run concurrently; ``cpu_count`` is recorded so a
    single-core container's numbers read for what they are.
    """
    import tempfile

    from repro.analysis.harness import run_pipelined_comparison  # noqa: E402
    from repro.streams.io import save_stream  # noqa: E402
    from repro.streams.truth import exact_frequencies  # noqa: E402

    stream = zipfian_stream(length, UNIVERSE, skew=SKEW, rng=RandomSource(SEED))
    truth = exact_frequencies(stream)
    results = {
        "experiment": "async",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length": length, "universe": UNIVERSE,
            "seed": SEED,
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "chunk_size": ASYNC_CHUNK,
            "queue_depth": ASYNC_QUEUE_DEPTH, "sketch": "optimal (Thm 2)",
            "shard_counts": list(ASYNC_SHARD_COUNTS),
            "warmup": warmup, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
        "runs": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.txt")
        save_stream(stream, path)
        for shards in ASYNC_SHARD_COUNTS:
            factory = _sharded_factory(SEED + 1, UNIVERSE, length)
            serial_payloads: list = []
            pipelined_payloads: list = []
            identical_every_repeat = True
            symmetric_differences: list = []
            pipelined = None
            for index in range(warmup + max(1, repeats)):
                rows = run_pipelined_comparison(
                    factory, path, PHI, shards=shards, chunk_size=ASYNC_CHUNK,
                    queue_depth=ASYNC_QUEUE_DEPTH, rng=RandomSource(SEED + 10 + shards),
                    true_frequencies=truth,
                )
                serial, pipelined = rows
                if index >= warmup:
                    serial_payloads.append(_row_payload(serial, length))
                    pipelined_payloads.append(_row_payload(pipelined, length))
                    identical_every_repeat &= bool(
                        pipelined.measurements["identical_report"]
                    )
                    symmetric_differences.append(
                        int(pipelined.measurements["report_symmetric_difference"])
                    )
            entry = {
                "serial": _merge_timing(serial_payloads),
                "pipelined": _merge_timing(pipelined_payloads),
                "identical_report": identical_every_repeat,
                # worst repeat, so a transient mismatch stays diagnosable next
                # to the ANDed identical_report flag
                "report_symmetric_difference": max(symmetric_differences),
                "max_queue_depth": int(pipelined.measurements["max_queue_depth"]),
            }
            entry["pipelined_speedup_over_serial"] = (
                entry["serial"]["total_seconds"] / entry["pipelined"]["total_seconds"]
                if entry["pipelined"]["total_seconds"]
                else float("inf")
            )
            results["runs"][str(shards)] = entry
            print(
                f"k={shards}  serial {entry['serial']['total_seconds']:6.2f}s "
                f"(ingest {entry['serial']['ingest_seconds']:.2f} + "
                f"combine {entry['serial']['combine_seconds']:.2f})   "
                f"pipelined {entry['pipelined']['total_seconds']:6.2f}s "
                f"(ingest {entry['pipelined']['ingest_seconds']:.2f} + "
                f"combine {entry['pipelined']['combine_seconds']:.2f})   "
                f"speedup {entry['pipelined_speedup_over_serial']:4.2f}x   "
                f"identical_report {entry['identical_report']}"
            )
    results["metrics"] = _metrics_section()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


SERVICE_SHARD_COUNTS = (1, 4)
SERVICE_CHUNK = 1 << 16
SERVICE_PUSH_BATCH = 1 << 14  # deliberately != chunk size: exercises the re-chunker
SERVICE_PUSH_WINDOW = 32  # un-acked frames in flight on the pipelined-push leg

# The round-trip push throughput BENCH_service.json recorded before the
# zero-copy framing + credit-windowed pipelining landed (PR 4, full 10^6-item
# run on this container) — kept in the JSON so the before/after is one artifact.
PR4_ROUNDTRIP_ITEMS_PER_SECOND = {"1": 925_881.0, "4": 875_414.0}


def run_service(length: int, batch_size: int, output: str,
                warmup: int = 1, repeats: int = 3) -> dict:
    """Experiment SERVICE: offline vs socket-served vs checkpoint-resumed replay.

    Delegates to :func:`repro.analysis.harness.run_service_comparison` (one real
    server per leg on a loopback TCP socket), so the benchmark measures exactly
    the equalities the service layer promises: the served report — via the
    round-trip push path *and* the credit-windowed ``push_stream`` path — equals
    the offline ``run_chunks`` replay bit for bit, and a mid-stream checkpoint →
    restart → resume equals the offline replay that round-trips its state through
    the same :class:`~repro.service.Checkpointer` at the same chunk boundary.
    The push throughput is client-observed (frame encode + socket + server
    ingest), so it is the number a deployment planning to feed the service over
    localhost should look at; the pipelined leg additionally records the
    mid-ingest query latency series (first query builds the snapshot, the rest
    hit the executor's versioned cache).  ``cpu_count`` is recorded as in the
    other modes, and every timing carries median/min/max across ``repeats``.
    """
    import tempfile

    from repro.analysis.harness import run_service_comparison  # noqa: E402
    from repro.streams.io import save_stream  # noqa: E402
    from repro.streams.truth import exact_frequencies  # noqa: E402

    stream = zipfian_stream(length, UNIVERSE, skew=SKEW, rng=RandomSource(SEED))
    truth = exact_frequencies(stream)
    results = {
        "experiment": "service",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length": length, "universe": UNIVERSE,
            "seed": SEED,
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "chunk_size": SERVICE_CHUNK,
            "push_batch": SERVICE_PUSH_BATCH, "push_window": SERVICE_PUSH_WINDOW,
            "sketch": "optimal (Thm 2)", "shard_counts": list(SERVICE_SHARD_COUNTS),
            "warmup": warmup, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
        "runs": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.txt")
        save_stream(stream, path)
        for shards in SERVICE_SHARD_COUNTS:
            factory = _sharded_factory(SEED + 1, UNIVERSE, length)
            payloads: dict = {"offline": [], "served": [], "pipelined": []}
            push_rates: dict = {"served": [], "pipelined": []}
            push_times: dict = {"served": [], "pipelined": []}
            identical = {"served": True, "pipelined": True, "resumed": True}
            # worst repeat per leg, kept next to the ANDed identical flags so a
            # transient mismatch stays diagnosable in the artifact
            sym_diff = {"served": 0, "pipelined": 0, "resumed": 0}
            served = pipelined = resumed = None
            for index in range(warmup + max(1, repeats)):
                offline, served, pipelined, resumed = run_service_comparison(
                    factory, path, PHI, shards=shards, chunk_size=SERVICE_CHUNK,
                    push_batch=SERVICE_PUSH_BATCH, rng=RandomSource(SEED + 20 + shards),
                    push_window=SERVICE_PUSH_WINDOW, true_frequencies=truth,
                )
                if index < warmup:
                    continue
                payloads["offline"].append(_row_payload(offline, length))
                payloads["served"].append(_row_payload(served, length))
                payloads["pipelined"].append(_row_payload(pipelined, length))
                for label, row in (
                    ("served", served), ("pipelined", pipelined), ("resumed", resumed)
                ):
                    identical[label] &= bool(row.measurements["identical_report"])
                    sym_diff[label] = max(
                        sym_diff[label],
                        int(row.measurements["report_symmetric_difference"]),
                    )
                for label, row in (("served", served), ("pipelined", pipelined)):
                    push_rates[label].append(row.measurements["pushed_items_per_second"])
                    push_times[label].append(row.measurements["push_seconds"])
            entry = {
                "offline": _merge_timing(payloads["offline"]),
                "served": _merge_timing(payloads["served"]),
                "pipelined": _merge_timing(payloads["pipelined"]),
                "served_identical_report": identical["served"],
                "served_symmetric_difference": sym_diff["served"],
                "push_seconds": statistics.median(push_times["served"]),
                "pushed_items_per_second": statistics.median(push_rates["served"]),
                "pushed_items_per_second_stats": spread(push_rates["served"]),
                "pipelined_identical_report": identical["pipelined"],
                "pipelined_symmetric_difference": sym_diff["pipelined"],
                "pipelined_push_seconds": statistics.median(push_times["pipelined"]),
                "pipelined_pushed_items_per_second": statistics.median(
                    push_rates["pipelined"]
                ),
                "pipelined_pushed_items_per_second_stats": spread(push_rates["pipelined"]),
                "query_latency_series": list(
                    pipelined.measurements["query_latency_series"]
                ),
                "query_first_seconds": pipelined.measurements["query_first_seconds"],
                "query_cached_seconds_median": pipelined.measurements[
                    "query_cached_seconds_median"
                ],
                "snapshot_cache_hits": int(pipelined.measurements["snapshot_cache_hits"]),
                "snapshot_cache_misses": int(
                    pipelined.measurements["snapshot_cache_misses"]
                ),
                "resumed_identical_report": identical["resumed"],
                "resumed_symmetric_difference": sym_diff["resumed"],
                "checkpoint_items": int(resumed.measurements["checkpoint_items"]),
            }
            entry["pipelined_push_speedup"] = (
                entry["pipelined_pushed_items_per_second"]
                / entry["pushed_items_per_second"]
                if entry["pushed_items_per_second"]
                else float("inf")
            )
            baseline = PR4_ROUNDTRIP_ITEMS_PER_SECOND.get(str(shards))
            if baseline and length == DEFAULT_LENGTH:
                # The baseline is a full-length run on this container; comparing
                # a shortened smoke run against it would be apples to oranges.
                entry["pr4_roundtrip_items_per_second"] = baseline
                entry["speedup_vs_pr4_roundtrip"] = (
                    entry["pipelined_pushed_items_per_second"] / baseline
                )
            results["runs"][str(shards)] = entry
            print(
                f"k={shards}  offline {entry['offline']['total_seconds']:6.2f}s   "
                f"round-trip push {entry['pushed_items_per_second']:>12,.0f} it/s   "
                f"pipelined push {entry['pipelined_pushed_items_per_second']:>12,.0f} it/s "
                f"({entry['pipelined_push_speedup']:.1f}x)   "
                f"query cached {entry['query_cached_seconds_median'] * 1e3:.2f} ms   "
                f"identical: served {entry['served_identical_report']} "
                f"pipelined {entry['pipelined_identical_report']} "
                f"resumed {entry['resumed_identical_report']}"
            )
    results["metrics"] = _metrics_section()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


REPLICATION_COUNTS = (1, 3, 5)
REPLICATION_CHUNK = 1 << 16
REPLICATION_KILL_REPLICA = 1
REPLICATION_HEAL_AFTER_CHUNKS = 2


def run_replication(length: int, batch_size: int, output: str,
                    warmup: int = 1, repeats: int = 3) -> dict:
    """Experiment REPLICATION: quorum groups, failover time, degraded-window validity.

    Delegates to :func:`repro.analysis.harness.run_replication_comparison` once per
    replica count and repeat, so the benchmark asserts exactly the invariants the
    replication layer promises: replica 0 of a fault-free group equals the
    unreplicated run bit for bit, the degraded window after a scripted kill still
    answers Definition 1 from the survivors (flagged ``degraded``), and the
    supervisor's re-seeded replacement equals an uninterrupted equal-seed reference
    bit for bit.  The headline costs are ``ingest_overhead_vs_single`` (the R× tax
    of the fan-out) and ``failover_seconds`` (quarantine to re-admit).  Correctness
    flags are ANDed across repeats; timings carry median/min/max.
    """
    import tempfile

    from repro.analysis.harness import run_replication_comparison  # noqa: E402
    from repro.streams.io import save_stream  # noqa: E402
    from repro.streams.truth import exact_frequencies  # noqa: E402

    # The failover leg needs enough chunk boundaries for kill + heal + a tail;
    # shrink the chunk on short (smoke) streams instead of silently not healing.
    chunk = REPLICATION_CHUNK
    if length // chunk < 12:
        chunk = max(1024, length // 12)
    stream = zipfian_stream(length, UNIVERSE, skew=SKEW, rng=RandomSource(SEED))
    truth = exact_frequencies(stream)
    results = {
        "experiment": "replication",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length": length, "universe": UNIVERSE,
            "seed": SEED,
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "chunk_size": chunk,
            "sketch": "optimal (Thm 2)", "replica_counts": list(REPLICATION_COUNTS),
            "kill_replica": REPLICATION_KILL_REPLICA,
            "heal_after_chunks": REPLICATION_HEAL_AFTER_CHUNKS,
            "warmup": warmup, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
        "runs": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.txt")
        save_stream(stream, path)
        for replicas in REPLICATION_COUNTS:
            factory = _sharded_factory(SEED + 1, UNIVERSE, length)
            kill = REPLICATION_KILL_REPLICA if replicas >= 3 else None
            payloads: dict = {"single": [], "replicated": [], "failover": []}
            overheads: list = []
            failover_seconds: list = []
            flags = {
                "replica0_identical_to_single": True, "shape_ok": True,
                "identical_report": True, "identical_to_donor": True,
                "degraded_queries_valid": True,
            }
            failover_row = None
            degraded_queries = 0
            for index in range(warmup + max(1, repeats)):
                rows = run_replication_comparison(
                    factory, path, PHI, replicas=replicas, chunk_size=chunk,
                    kill_replica=kill,
                    heal_after_chunks=REPLICATION_HEAL_AFTER_CHUNKS,
                    true_frequencies=truth,
                )
                if index < warmup:
                    continue
                single, replicated = rows[0], rows[1]
                payloads["single"].append(_row_payload(single, length))
                payloads["replicated"].append(_row_payload(replicated, length))
                overheads.append(replicated.measurements["ingest_overhead_vs_single"])
                for flag in ("replica0_identical_to_single", "shape_ok"):
                    flags[flag] &= bool(replicated.measurements[flag])
                if kill is not None:
                    failover_row = rows[2]
                    payloads["failover"].append(_row_payload(failover_row, length))
                    failover_seconds.append(
                        failover_row.measurements["failover_seconds"]
                    )
                    degraded_queries = int(
                        failover_row.measurements["degraded_queries"]
                    )
                    for flag in ("identical_report", "identical_to_donor",
                                 "degraded_queries_valid"):
                        flags[flag] &= bool(failover_row.measurements[flag])
            entry = {
                "single": _merge_timing(payloads["single"]),
                "replicated": _merge_timing(payloads["replicated"]),
                "ingest_overhead_vs_single": statistics.median(overheads),
                "ingest_overhead_vs_single_stats": spread(overheads),
                "replica0_identical_to_single": flags["replica0_identical_to_single"],
                "shape_ok": flags["shape_ok"],
                "quorum": int(replicated.measurements["quorum"]),
            }
            if kill is not None:
                entry.update({
                    "failover": _merge_timing(payloads["failover"]),
                    "failover_seconds": statistics.median(failover_seconds),
                    "failover_seconds_stats": spread(failover_seconds),
                    "identical_report": flags["identical_report"],
                    "identical_to_donor": flags["identical_to_donor"],
                    "degraded_queries": degraded_queries,
                    "degraded_queries_valid": flags["degraded_queries_valid"],
                    "kill_chunk": int(failover_row.measurements["kill_chunk"]),
                    "heal_chunk": int(failover_row.measurements["heal_chunk"]),
                })
            results["runs"][str(replicas)] = entry
            line = (
                f"R={replicas}  ingest overhead "
                f"{entry['ingest_overhead_vs_single']:5.2f}x   "
                f"replica0==single {entry['replica0_identical_to_single']}"
            )
            if kill is not None:
                line += (
                    f"   failover {entry['failover_seconds'] * 1e3:7.1f} ms   "
                    f"identical_report {entry['identical_report']}   "
                    f"degraded valid {entry['degraded_queries_valid']} "
                    f"({entry['degraded_queries']} queries)"
                )
            print(line)
    results["metrics"] = _metrics_section()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


OBSERVABILITY_CHUNK = 1 << 16
OBSERVABILITY_PUSH_BATCH = 1 << 14
OBSERVABILITY_PUSH_WINDOW = 32
OBSERVABILITY_REPLICAS = 3
OBSERVABILITY_KILL_REPLICA = 1
OBSERVABILITY_MAX_OVERHEAD = 0.05  # the <5% metrics-on claim this mode measures


def _metrics_section(registry=None) -> dict:
    """A compact metrics snapshot embedded in every ``BENCH_*.json`` artifact.

    Reads the process-wide registry (the one every un-parameterized executor
    records into), so the recorded JSONs double as metric fixtures: the
    queue-depth high-water mark, chunk/items totals, and snapshot-cache
    hit/miss counts of the runs that produced the numbers ride along.
    """
    from repro.observability import get_registry  # noqa: E402

    snapshot = (registry if registry is not None else get_registry()).snapshot()
    families = snapshot["metrics"]

    def series(name: str) -> dict:
        family = families.get(name)
        if not family or not family["series"]:
            return {}
        return family["series"][0]

    def value(name: str) -> float:
        return float(series(name).get("value", 0.0))

    def histogram(name: str) -> dict:
        entry = series(name)
        return {"count": int(entry.get("count", 0)), "sum": float(entry.get("sum", 0.0))}

    return {
        "metrics_schema": snapshot["metrics_schema"],
        "pipeline_chunks_total": value("repro_pipeline_chunks_total"),
        "pipeline_items_total": value("repro_pipeline_items_total"),
        "queue_depth_max": float(series("repro_pipeline_queue_depth").get("max", 0.0)),
        "chunk_ingest_seconds": histogram("repro_pipeline_chunk_ingest_seconds"),
        "snapshot_cache_hits_total": value("repro_pipeline_snapshot_cache_hits_total"),
        "snapshot_cache_misses_total": value(
            "repro_pipeline_snapshot_cache_misses_total"
        ),
    }


def run_observability(length: int, batch_size: int, output: str,
                      warmup: int = 1, repeats: int = 3) -> dict:
    """Experiment OBSERVABILITY: the metrics-on tax and a scraped fault run.

    Two legs, both against a real :class:`~repro.service.IngestServer` on a
    loopback socket with the credit-windowed ``push_stream`` pipeline:

    * **overhead** — every pass pushes the identical stream twice with
      identical seeds, once into a *disabled* :class:`MetricRegistry` and once
      into an enabled one, asserts the two final reports are bit-for-bit
      identical (instrumentation must never perturb ingestion), and records
      the client-observed push throughput of each.  The headline number is
      ``overhead_fraction`` (1 − enabled/disabled median throughput), claimed
      and checked < 5%;
    * **fault_scrape** — one replicated run (R=3) with a scripted mid-ingest
      kill and the Prometheus HTTP sidecar up, scraped over live HTTP after
      the failure: the scrape must surface ``repro_replication_failovers_total
      >= 1``, a heal, nonzero degraded seconds, and populated latency
      histograms — the same assertions CI's ``observability-smoke`` job makes
      from the CLI.
    """
    import urllib.request

    from repro.observability import MetricRegistry, MetricsHTTPServer  # noqa: E402
    from repro.pipeline import PipelinedExecutor  # noqa: E402
    from repro.replication import FaultPlan, ReplicaGroup, ReplicaSupervisor  # noqa: E402
    from repro.service import IngestServer, ServiceClient  # noqa: E402

    chunk = OBSERVABILITY_CHUNK
    if length // chunk < 12:
        chunk = max(1024, length // 12)
    push_batch = min(OBSERVABILITY_PUSH_BATCH, chunk)
    stream = zipfian_stream(length, UNIVERSE, skew=SKEW, rng=RandomSource(SEED))
    items = stream.array
    batches = [items[start:start + push_batch]
               for start in range(0, len(items), push_batch)]

    def build_sketch():
        return OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=length, rng=RandomSource(SEED + 1),
        )

    def push_once(registry):
        """One served pipelined push into ``registry``; returns (seconds, report)."""
        executor = PipelinedExecutor(
            sketch=build_sketch(), chunk_size=chunk, registry=registry,
        )
        server = IngestServer(executor, port=0, registry=registry)
        server.start()
        try:
            with ServiceClient(server.endpoint) as client:
                started = time.perf_counter()
                client.push_stream(batches, window=OBSERVABILITY_PUSH_WINDOW)
                client.finish()
                seconds = time.perf_counter() - started
                report = client.query()
        finally:
            server.close()
        return seconds, report

    results = {
        "experiment": "observability",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length": length, "universe": UNIVERSE,
            "seed": SEED,
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "chunk_size": chunk,
            "push_batch": push_batch, "push_window": OBSERVABILITY_PUSH_WINDOW,
            "sketch": "optimal (Thm 2)", "replicas": OBSERVABILITY_REPLICAS,
            "kill_replica": OBSERVABILITY_KILL_REPLICA,
            "max_overhead_fraction": OBSERVABILITY_MAX_OVERHEAD,
            "warmup": warmup, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
    }

    rates = {"disabled": [], "enabled": []}
    identical_every_repeat = True
    enabled_registry = None
    for index in range(warmup + max(1, repeats)):
        reports = {}
        for label, enabled in (("disabled", False), ("enabled", True)):
            registry = MetricRegistry(enabled=enabled)
            seconds, reports[label] = push_once(registry)
            if index >= warmup:
                rates[label].append(length / seconds if seconds else float("inf"))
            if enabled:
                enabled_registry = registry
        identical_every_repeat &= (
            reports["disabled"].report.items == reports["enabled"].report.items
        )
    overhead = 1.0 - (
        statistics.median(rates["enabled"]) / statistics.median(rates["disabled"])
    )
    results["overhead"] = {
        "disabled_items_per_second": statistics.median(rates["disabled"]),
        "disabled_items_per_second_stats": spread(rates["disabled"]),
        "enabled_items_per_second": statistics.median(rates["enabled"]),
        "enabled_items_per_second_stats": spread(rates["enabled"]),
        "overhead_fraction": overhead,
        "within_claimed_bound": overhead < OBSERVABILITY_MAX_OVERHEAD,
        "identical_report": identical_every_repeat,
    }
    results["metrics"] = _metrics_section(enabled_registry)
    print(
        f"metrics off {results['overhead']['disabled_items_per_second']:>12,.0f} it/s   "
        f"on {results['overhead']['enabled_items_per_second']:>12,.0f} it/s   "
        f"overhead {overhead * 100:5.2f}%   "
        f"identical_report {identical_every_repeat}"
    )

    # Leg 2: replicated fault injection with a live HTTP scrape mid-story.
    registry = MetricRegistry(enabled=True)
    rng = RandomSource(SEED + 2)
    group = ReplicaGroup(
        [PipelinedExecutor(sketch=OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=length, rng=rng.spawn(index)),
            chunk_size=chunk, registry=registry)
         for index in range(OBSERVABILITY_REPLICAS)],
        chunk_size=chunk,
        supervisor=ReplicaSupervisor(heal_after_chunks=1),
        fault_plan=FaultPlan.parse(
            [f"kill:replica={OBSERVABILITY_KILL_REPLICA},after_chunk=2"]
        ),
        registry=registry,
    )
    server = IngestServer(group, port=0, registry=registry)
    server.start()
    sidecar = MetricsHTTPServer(registry, port=0).start()
    try:
        with ServiceClient(server.endpoint) as client:
            client.push_stream(batches, window=OBSERVABILITY_PUSH_WINDOW)
            client.finish()
        with urllib.request.urlopen(sidecar.url, timeout=30) as response:
            scraped = response.read().decode("utf-8")
    finally:
        sidecar.close()
        server.close()

    def scraped_value(name: str) -> float:
        for line in scraped.splitlines():
            if line.startswith(name + " "):
                return float(line.split()[-1])
        return 0.0

    snapshot = registry.snapshot()["metrics"]
    ingest_hist = snapshot["repro_pipeline_chunk_ingest_seconds"]["series"][0]
    command_series = snapshot["repro_service_command_seconds"]["series"]
    results["fault_scrape"] = {
        "failovers_total": scraped_value("repro_replication_failovers_total"),
        "heals_total": scraped_value("repro_replication_heals_total"),
        "degraded_seconds_total": scraped_value(
            "repro_replication_degraded_seconds_total"
        ),
        "live_replicas": scraped_value("repro_replication_live_replicas"),
        "chunk_ingest_observations": int(ingest_hist["count"]),
        "command_latency_observations": int(
            sum(entry["count"] for entry in command_series)
        ),
        "scrape_surfaced_failover": scraped_value(
            "repro_replication_failovers_total"
        ) >= 1.0,
        "histograms_populated": ingest_hist["count"] > 0
        and sum(entry["count"] for entry in command_series) > 0,
    }
    fault = results["fault_scrape"]
    print(
        f"fault scrape: failovers {fault['failovers_total']:.0f}   "
        f"heals {fault['heals_total']:.0f}   "
        f"degraded {fault['degraded_seconds_total'] * 1e3:.1f} ms   "
        f"histograms populated {fault['histograms_populated']}"
    )
    if not fault["scrape_surfaced_failover"] or not fault["histograms_populated"]:
        raise SystemExit("observability fault leg failed: scrape did not surface "
                         "the failover or histograms stayed empty")
    if not identical_every_repeat:
        raise SystemExit("observability overhead leg failed: metrics-enabled "
                         "report diverged from metrics-off")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


TENANCY_STREAM_COUNT = 4
TENANCY_MAX_LIVE = 2
TENANCY_CHUNK = 1 << 16


def run_tenancy(length: int, batch_size: int, output: str,
                warmup: int = 1, repeats: int = 3) -> dict:
    """Experiment TENANCY: k named streams under forced LRU checkpoint-eviction.

    Delegates to :func:`repro.analysis.harness.run_tenancy_comparison`: one real
    :class:`~repro.service.IngestServer` hosts ``TENANCY_STREAM_COUNT``
    independently generated Zipf traces as named streams with
    ``--max-live-streams`` capped at ``TENANCY_MAX_LIVE`` (< stream count), so
    the round-robin pushes force every stream through the evict → spill →
    lazily-restore path.  Two sketches run per pass — deterministic Misra–Gries
    and the paper's randomized optimal (Thm 2) sketch — and the headline check
    is the same for both: every stream's served report is bit-for-bit the solo
    offline replay of just that stream's trace at equal seeds
    (``identical_report`` per stream, ANDed across repeats; the randomized
    reference round-trips through the Checkpointer at each recorded eviction
    boundary, which the RNG serialize contract makes exact).  Costs recorded:
    aggregate push throughput with eviction churn in the loop, and per-stream
    eviction/restore counts.
    """
    import tempfile

    from repro.analysis.harness import run_tenancy_comparison  # noqa: E402
    from repro.streams.io import save_stream  # noqa: E402

    per_stream = max(1, length // TENANCY_STREAM_COUNT)
    # Eviction churn needs several chunk boundaries per stream; shrink the chunk
    # on short (smoke) streams instead of silently never evicting.
    chunk = TENANCY_CHUNK
    if per_stream // chunk < 4:
        chunk = max(1024, per_stream // 4)
    sketches = {
        "misra-gries": {
            "factory": lambda rng: MisraGries(EPSILON, UNIVERSE),
            "report_kwargs": {"phi": PHI},
            "deterministic": True,
        },
        "optimal (Thm 2)": {
            "factory": lambda rng: OptimalListHeavyHitters(
                epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
                stream_length=per_stream, rng=rng,
            ),
            "report_kwargs": {},
            "deterministic": False,
        },
    }
    results = {
        "experiment": "tenancy",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length_per_stream": per_stream,
            "universe": UNIVERSE, "seeds": [SEED + 100 + i
                                            for i in range(TENANCY_STREAM_COUNT)],
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "chunk_size": chunk,
            "push_batch": chunk, "streams": TENANCY_STREAM_COUNT,
            "max_live_streams": TENANCY_MAX_LIVE, "stream_seed": SEED,
            "warmup": warmup, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
        "runs": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for index in range(TENANCY_STREAM_COUNT):
            stream = zipfian_stream(per_stream, UNIVERSE, skew=SKEW,
                                    rng=RandomSource(SEED + 100 + index))
            path = os.path.join(tmp, f"trace{index}.txt")
            save_stream(stream, path)
            paths.append(path)
        total_items = per_stream * TENANCY_STREAM_COUNT
        for label, spec in sketches.items():
            per_stream_payload: dict = {}
            push_rates: list = []
            all_identical = True
            for index in range(warmup + max(1, repeats)):
                rows = run_tenancy_comparison(
                    spec["factory"], paths, PHI, chunk_size=chunk,
                    max_live_streams=TENANCY_MAX_LIVE, seed=SEED,
                    report_kwargs=spec["report_kwargs"],
                )
                if index < warmup:
                    continue
                push_rates.append(
                    total_items / rows[0].measurements["push_seconds"]
                    if rows[0].measurements["push_seconds"] else float("inf")
                )
                for row in rows:
                    name = row.label.split(":", 1)[1]
                    entry = per_stream_payload.setdefault(
                        name,
                        {
                            "identical_report": True,
                            "report_symmetric_difference": 0,
                            "evictions": 0, "restores": 0,
                            "recall": row.measurements["recall"],
                            "precision": row.measurements["precision"],
                            "space_bits": row.measurements["space_bits"],
                        },
                    )
                    entry["identical_report"] &= bool(
                        row.measurements["identical_report"]
                    )
                    entry["report_symmetric_difference"] = max(
                        entry["report_symmetric_difference"],
                        int(row.measurements["report_symmetric_difference"]),
                    )
                    entry["evictions"] = max(
                        entry["evictions"], int(row.measurements["evictions"])
                    )
                    entry["restores"] = max(
                        entry["restores"], int(row.measurements["restores"])
                    )
                    all_identical &= bool(row.measurements["identical_report"])
            entry = {
                "deterministic_sketch": spec["deterministic"],
                "streams": per_stream_payload,
                "all_identical": all_identical,
                "evictions_forced": all(
                    stream_entry["evictions"] > 0
                    for stream_entry in per_stream_payload.values()
                ),
                "push_seconds": statistics.median(
                    total_items / rate for rate in push_rates
                ),
                "pushed_items_per_second": statistics.median(push_rates),
                "pushed_items_per_second_stats": spread(push_rates),
            }
            results["runs"][label] = entry
            print(
                f"{label:<16} push {entry['pushed_items_per_second']:>12,.0f} it/s "
                f"(evictions per stream: "
                f"{[stream_entry['evictions'] for stream_entry in per_stream_payload.values()]})   "
                f"identical per stream: {all_identical}"
            )
    results["metrics"] = _metrics_section()
    if not all(entry["all_identical"] for entry in results["runs"].values()):
        raise SystemExit("tenancy bench failed: a served stream diverged from "
                         "its solo offline replay")
    if not all(entry["evictions_forced"] for entry in results["runs"].values()):
        raise SystemExit("tenancy bench failed: eviction churn was not forced "
                         "on every stream")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


DURABILITY_CHUNK = 1 << 13
DURABILITY_PUSH_BATCH = 1 << 12
DURABILITY_POLICIES = ("off", "interval:8", "always")


def run_durability(length: int, batch_size: int, output: str,
                   warmup: int = 1, repeats: int = 3) -> dict:
    """Experiment DURABILITY: the write-ahead journal's cost and its guarantee.

    Three legs over one saved Zipf trace, all with the same ``serve`` sketch
    recipe (``--algorithm simple``) so every comparison is bit-for-bit:

    1. **write tax** — the in-process push path (journal append + chunk ingest)
       timed unjournaled and under each fsync policy (``off``, ``interval:8``,
       ``always``), asserting the final report is identical in all four cases
       (the journal must never perturb the sketch) and recording each policy's
       throughput ratio against the unjournaled baseline;
    2. **recovery replay** — the full-trace journal is recovered repeatedly
       with :func:`repro.durability.recover_sink`, timing the replay and
       asserting the recovered snapshot equals the baseline bit for bit;
    3. **kill-9 sweep** — :func:`repro.analysis.harness.run_crash_comparison`
       crashes a real served subprocess at several acked-batch counts, once
       with an external ``SIGKILL`` and once with the in-process
       ``crash:after_chunk`` fault (torn half-record), restarts it on the same
       WAL directory, and diffs the answer against an uninterrupted offline
       replay.  The artifact's top-level ``no_acked_loss`` and
       ``identical_report`` are the AND over every leg — the acceptance gates.

    The bench refuses (``SystemExit``) if any gate fails.
    """
    import shutil
    import tempfile

    from repro.analysis.harness import run_crash_comparison  # noqa: E402
    from repro.cli import _sketch_builder  # noqa: E402
    from repro.durability import WriteAheadLog, recover_sink  # noqa: E402
    from repro.pipeline import PipelinedExecutor  # noqa: E402
    from repro.service.protocol import report_to_payload  # noqa: E402
    from repro.streams.io import iterate_stream_file_chunks, save_stream  # noqa: E402

    chunk = DURABILITY_CHUNK
    if length // chunk < 4:
        chunk = max(1024, length // 4)
    build = _sketch_builder("simple", EPSILON, PHI, UNIVERSE, length)

    results = {
        "experiment": "durability",
        "stream": {"kind": "zipf", "skew": SKEW, "length": length,
                   "universe": UNIVERSE, "seed": SEED},
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "algorithm": "simple",
            "chunk_size": chunk, "push_batch": DURABILITY_PUSH_BATCH,
            "fsync_policies": list(DURABILITY_POLICIES),
            "warmup": warmup, "repeats": repeats,
        },
        "cpu_count": os.cpu_count(),
        "runs": {},
    }

    with tempfile.TemporaryDirectory(prefix="repro-durability-") as tmp:
        trace = os.path.join(tmp, "trace.txt")
        save_stream(zipfian_stream(length, UNIVERSE, skew=SKEW,
                                   rng=RandomSource(SEED)), trace)
        chunks = list(iterate_stream_file_chunks(trace, chunk))

        def journaled_pass(policy):
            """One timed pass of the push path; returns (seconds, payload, wal_dir)."""
            wal_dir = tempfile.mkdtemp(prefix="wal-", dir=tmp)
            executor = PipelinedExecutor(sketch=build(RandomSource(SEED)),
                                         chunk_size=chunk)
            wal = (WriteAheadLog(wal_dir, fsync=policy)
                   if policy is not None else None)
            started = time.perf_counter()
            for piece in chunks:
                if wal is not None:
                    wal.append(piece)
                executor.ingest_chunk(piece)
            elapsed = time.perf_counter() - started
            if wal is not None:
                wal.close()
            payload = report_to_payload(executor.snapshot().report)
            return elapsed, payload, wal_dir

        # Leg 1: write tax per fsync policy vs the unjournaled baseline.
        all_identical = True
        baseline_payload = None
        baseline_rate = None
        recovery_wal_dir = None
        for policy in (None, *DURABILITY_POLICIES):
            rates = []
            for index in range(warmup + max(1, repeats)):
                elapsed, payload, wal_dir = journaled_pass(policy)
                if policy == "always" and index == warmup + max(1, repeats) - 1:
                    recovery_wal_dir = wal_dir  # leg 2 replays this journal
                elif policy is not None:
                    shutil.rmtree(wal_dir, ignore_errors=True)
                if index < warmup:
                    continue
                rates.append(length / elapsed if elapsed else float("inf"))
                if baseline_payload is None:
                    baseline_payload = payload
                all_identical &= payload == baseline_payload
            name = policy if policy is not None else "unjournaled"
            rate = statistics.median(rates)
            if policy is None:
                baseline_rate = rate
            results["runs"][name] = {
                "items_per_second": rate,
                "items_per_second_stats": spread(rates),
                "throughput_vs_unjournaled": (rate / baseline_rate
                                              if baseline_rate else 1.0),
                "identical_report": bool(all_identical),
            }
            print(f"wal={name:<12} {rate:>12,.0f} it/s "
                  f"({results['runs'][name]['throughput_vs_unjournaled']:.2f}x "
                  f"unjournaled)   identical: {all_identical}")

        # Leg 2: timed recovery replay of the full-trace journal.
        recovery_seconds = []
        recovery_identical = True
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            recovered = recover_sink(recovery_wal_dir,
                                     lambda: PipelinedExecutor(
                                         sketch=build(RandomSource(SEED)),
                                         chunk_size=chunk),
                                     chunk_size=chunk, fsync="off")
            recovery_seconds.append(time.perf_counter() - started)
            recovered.wal.close()
            if recovered.tail.size:
                # The sub-chunk remainder a live server would re-enqueue; the
                # baseline ingested it as its (equal-sized) final piece.
                recovered.sink.ingest_chunk(recovered.tail)
            payload = report_to_payload(recovered.sink.snapshot().report)
            recovery_identical &= payload == baseline_payload
            recovery_identical &= recovered.recovered_items == length
        results["runs"]["recovery"] = {
            "recovery_seconds": statistics.median(recovery_seconds),
            "recovery_seconds_stats": spread(recovery_seconds),
            "replayed_items_per_second": statistics.median(
                length / seconds for seconds in recovery_seconds),
            "identical_report": bool(recovery_identical),
        }
        print(f"recovery         {statistics.median(recovery_seconds):.3f}s "
              f"for {length:,} journaled items   identical: {recovery_identical}")

        # Leg 3: the kill-9 sweep against real served subprocesses.
        total_batches = max(1, length // DURABILITY_PUSH_BATCH)
        kill_points = sorted({1, max(1, total_batches // 3),
                              max(1, (2 * total_batches) // 3)})
        no_acked_loss = True
        sweep_identical = True
        sweep_rows = []
        for mode in ("sigkill", "crash"):
            rows = run_crash_comparison(
                trace, PHI, epsilon=EPSILON, algorithm="simple", seed=SEED,
                chunk_size=chunk, push_batch=DURABILITY_PUSH_BATCH,
                kill_after_batches=kill_points, mode=mode,
            )
            for row in rows:
                no_acked_loss &= bool(row.measurements["no_acked_loss"])
                sweep_identical &= bool(row.measurements["identical_report"])
                sweep_rows.append(row.as_flat_dict())
                print(f"{row.label:<24} acked {int(row.measurements['acked_items']):>8,} "
                      f"recovered {int(row.measurements['recovered_items']):>8,}   "
                      f"no_acked_loss: {bool(row.measurements['no_acked_loss'])}   "
                      f"identical: {bool(row.measurements['identical_report'])}")
        results["runs"]["crash_sweep"] = {
            "kill_points": kill_points,
            "legs": sweep_rows,
            "no_acked_loss": bool(no_acked_loss),
            "identical_report": bool(sweep_identical),
            "restart_seconds": spread(
                [leg["restart_seconds"] for leg in sweep_rows]),
        }

    results["no_acked_loss"] = bool(no_acked_loss)
    results["identical_report"] = bool(
        all_identical and recovery_identical and sweep_identical)
    results["metrics"] = _metrics_section()
    if not results["no_acked_loss"]:
        raise SystemExit("durability bench failed: a crash leg lost acked items")
    if not results["identical_report"]:
        raise SystemExit("durability bench failed: a journaled, recovered or "
                         "crash-restarted report diverged from the baseline")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode",
                        choices=["throughput", "sharded", "async", "service",
                                 "replication", "observability", "tenancy",
                                 "durability"],
                        default="throughput")
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--warmup", type=int, default=1,
                        help="discarded warmup passes before the timed repeats (default 1)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="recorded timed passes; BENCH_*.json carries their "
                             "median/min/max (default 3)")
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)
    if args.warmup < 0:
        parser.error("--warmup cannot be negative")
    if args.repeats <= 0:
        parser.error("--repeats must be positive")
    if args.mode == "sharded":
        run_sharded(args.length, args.batch_size, args.output or "BENCH_sharding.json",
                    warmup=args.warmup, repeats=args.repeats)
    elif args.mode == "async":
        run_async(args.length, args.batch_size, args.output or "BENCH_async.json",
                  warmup=args.warmup, repeats=args.repeats)
    elif args.mode == "service":
        run_service(args.length, args.batch_size, args.output or "BENCH_service.json",
                    warmup=args.warmup, repeats=args.repeats)
    elif args.mode == "replication":
        run_replication(args.length, args.batch_size,
                        args.output or "BENCH_replication.json",
                        warmup=args.warmup, repeats=args.repeats)
    elif args.mode == "observability":
        run_observability(args.length, args.batch_size,
                          args.output or "BENCH_observability.json",
                          warmup=args.warmup, repeats=args.repeats)
    elif args.mode == "tenancy":
        run_tenancy(args.length, args.batch_size,
                    args.output or "BENCH_tenancy.json",
                    warmup=args.warmup, repeats=args.repeats)
    elif args.mode == "durability":
        run_durability(args.length, args.batch_size,
                       args.output or "BENCH_durability.json",
                       warmup=args.warmup, repeats=args.repeats)
    else:
        run(args.length, args.batch_size, args.output or "BENCH_throughput.json",
            warmup=args.warmup, repeats=args.repeats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
