"""Experiment THROUGHPUT — per-item vs. batched ingestion across all eight sketches.

Measures items/second for the reference per-item ``insert`` path and for the chunked
``insert_many`` fast path (geometric skip-ahead sampling, vectorized Carter–Wegman
hashing, pre-aggregated counter merges) on a Zipf(1.2) stream, and writes the results
to ``BENCH_throughput.json``.  This is the experiment behind the repository's claim
that the paper's O(1)-amortized-update guarantee survives contact with the Python
interpreter once ingestion is batched.

Run directly (the full 10^6-item stream takes a few minutes, dominated by the per-item
reference path)::

    PYTHONPATH=src python benchmarks/bench_throughput.py

or as a CI smoke test with a shorter stream::

    PYTHONPATH=src python benchmarks/bench_throughput.py --length 100000 --output smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

# Ensure the src layout is importable when the package is not installed.
import os

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.baselines.count_min import CountMinSketch  # noqa: E402
from repro.baselines.count_sketch import CountSketch  # noqa: E402
from repro.baselines.lossy_counting import LossyCounting  # noqa: E402
from repro.baselines.misra_gries import MisraGries  # noqa: E402
from repro.baselines.space_saving import SpaceSaving  # noqa: E402
from repro.baselines.sticky_sampling import StickySampling  # noqa: E402
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters  # noqa: E402
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters  # noqa: E402
from repro.primitives.rng import RandomSource  # noqa: E402
from repro.streams.generators import zipfian_stream  # noqa: E402

EPSILON = 0.01
PHI = 0.05
DELTA = 0.1
SKEW = 1.2
UNIVERSE = 1 << 16
DEFAULT_LENGTH = 10**6
DEFAULT_BATCH = 1 << 18
SEED = 20160626  # PODS 2016


def sketch_factories(universe: int, stream_length: int):
    """The eight sketches of the throughput experiment, fresh instance per call."""
    return {
        "optimal (Thm 2)": lambda seed: OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=universe,
            stream_length=stream_length, rng=RandomSource(seed),
        ),
        "simple (Thm 1)": lambda seed: SimpleListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=universe,
            stream_length=stream_length, rng=RandomSource(seed),
        ),
        "misra-gries": lambda seed: MisraGries(EPSILON, universe),
        "space-saving": lambda seed: SpaceSaving(EPSILON, universe),
        "count-min": lambda seed: CountMinSketch(EPSILON, DELTA, universe, rng=RandomSource(seed)),
        "count-sketch": lambda seed: CountSketch(0.05, DELTA, universe, rng=RandomSource(seed)),
        "lossy-counting": lambda seed: LossyCounting(EPSILON, universe),
        "sticky-sampling": lambda seed: StickySampling(
            EPSILON, PHI, DELTA, universe, rng=RandomSource(seed)
        ),
    }


def measure(algorithm, stream, batch_size=None) -> dict:
    start = time.perf_counter()
    algorithm.consume(stream, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return {
        "total_seconds": elapsed,
        "items_per_second": len(stream) / elapsed if elapsed > 0 else float("inf"),
        "space_bits": int(algorithm.space_bits()),
    }


def run(length: int, batch_size: int, output: str) -> dict:
    stream = zipfian_stream(length, UNIVERSE, skew=SKEW, rng=RandomSource(SEED))
    results = {
        "experiment": "throughput",
        "stream": {
            "kind": "zipf", "skew": SKEW, "length": length, "universe": UNIVERSE,
            "seed": SEED,
        },
        "parameters": {
            "epsilon": EPSILON, "phi": PHI, "delta": DELTA, "batch_size": batch_size,
        },
        "sketches": {},
    }
    for label, build in sketch_factories(UNIVERSE, length).items():
        per_item = measure(build(1), stream)
        batched = measure(build(1), stream, batch_size=batch_size)
        speedup = batched["items_per_second"] / per_item["items_per_second"]
        results["sketches"][label] = {
            "per_item": per_item,
            "insert_many": batched,
            "speedup": speedup,
        }
        print(
            f"{label:16s} per-item {per_item['items_per_second']:>12,.0f} it/s   "
            f"insert_many {batched['items_per_second']:>12,.0f} it/s   "
            f"speedup {speedup:5.1f}x"
        )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--output", default="BENCH_throughput.json")
    args = parser.parse_args(argv)
    run(args.length, args.batch_size, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
