"""Test-session bootstrap.

Makes the ``src`` layout importable even when the package has not been installed (for
example on an air-gapped machine where ``pip install -e .`` cannot resolve build
dependencies).  When the package *is* installed, the installed version takes precedence
only if it appears earlier on ``sys.path``; inserting ``src`` at the front keeps tests
running against the working tree, which is what a contributor editing the code wants.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
