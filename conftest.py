"""Test-session bootstrap.

Makes the ``src`` layout importable even when the package has not been installed (for
example on an air-gapped machine where ``pip install -e .`` cannot resolve build
dependencies).  When the package *is* installed, the installed version takes precedence
only if it appears earlier on ``sys.path``; inserting ``src`` at the front keeps tests
running against the working tree, which is what a contributor editing the code wants.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402


@pytest.fixture
def service_server(tmp_path):
    """Boot-factory for :class:`~repro.service.IngestServer` instances.

    Calling the fixture boots a started server and registers it for teardown,
    so tests never repeat the ``start()``/``try``/``finally: close()`` dance::

        def test_something(service_server):
            server = service_server(PipelinedExecutor(sketch=...), universe_size=N)
            with ServiceClient(server.endpoint) as client:
                ...

    By default the server listens on a Unix socket under ``tmp_path`` (no TCP
    port consumed, no loopback dependency); pass ``tcp=True`` for an ephemeral
    TCP port, or explicit ``port``/``unix_socket`` keywords for full control.
    Every remaining keyword is forwarded to ``IngestServer``.  All servers the
    test booted are closed on teardown, even when the test fails.
    """
    from repro.service import IngestServer

    started = []

    def boot(pipeline, *, tcp=False, **kwargs):
        if not tcp and "port" not in kwargs and "unix_socket" not in kwargs:
            kwargs["unix_socket"] = str(tmp_path / f"service{len(started)}.sock")
        elif tcp and "port" not in kwargs:
            kwargs["port"] = 0
        server = IngestServer(pipeline, **kwargs)
        started.append(server)
        return server.start()

    yield boot
    for server in reversed(started):
        server.close()
